// Package interp is a functional (architectural) interpreter for µx64: it
// executes programs in order with no microarchitecture at all. Its sole
// purpose is differential testing — the out-of-order core must produce the
// same committed outputs, exceptions and halt cause for every program.
package interp

import (
	"merlin/internal/isa"
)

// HaltReason mirrors the architectural subset of cpu.HaltReason.
type HaltReason uint8

// Architectural run outcomes.
const (
	HaltOK HaltReason = iota
	CrashPageFault
	CrashBadFetch
	CrashDivZero
	StepLimit
)

// Result is the architectural outcome of a run.
type Result struct {
	Halt   HaltReason
	Output []uint64
	ExcLog []uint32 // recoverable exceptions: kind | rip<<3 (same encoding as cpu)
	Steps  uint64
}

// machine is the architectural state.
type machine struct {
	regs [isa.NumArchRegs]uint64
	mem  map[uint64]byte
	out  []uint64
	exc  []uint32
}

func (m *machine) load(addr uint64, size int, signed bool) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.mem[addr+uint64(i)]) << (8 * i)
	}
	if signed && v&(1<<(uint(size)*8-1)) != 0 {
		v |= ^uint64(0) << (uint(size) * 8)
	}
	return v
}

func (m *machine) store(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

func inRange(addr uint64, size int) bool {
	return addr >= isa.DataBase && addr+uint64(size) <= isa.MemTop && addr+uint64(size) >= addr
}

// Run executes prog architecturally for at most maxSteps instructions.
func Run(prog *isa.Program, maxSteps uint64) Result {
	m := &machine{mem: make(map[uint64]byte)}
	for i, b := range prog.Data {
		m.mem[isa.DataBase+uint64(i)] = b
	}
	m.regs[isa.RegSP] = isa.StackTop

	pc := int64(prog.Entry)
	var steps uint64
	for ; steps < maxSteps; steps++ {
		if pc < 0 || pc >= int64(len(prog.Text)) {
			return Result{Halt: CrashBadFetch, Output: m.out, ExcLog: m.exc, Steps: steps}
		}
		in := prog.Text[pc]
		next := pc + 1
		switch {
		case in.Op == isa.HALT:
			return Result{Halt: HaltOK, Output: m.out, ExcLog: m.exc, Steps: steps}
		case in.Op == isa.NOP:
		case in.Op == isa.OUT:
			m.out = append(m.out, m.regs[in.Rs1])
		case in.Op == isa.LI:
			m.regs[in.Rd] = uint64(in.Imm)
		case in.Op == isa.DIV || in.Op == isa.REM:
			s1, s2 := m.regs[in.Rs1], m.regs[in.Rs2]
			if s2 == 0 {
				return Result{Halt: CrashDivZero, Output: m.out, ExcLog: m.exc, Steps: steps}
			}
			if in.Op == isa.DIV {
				m.regs[in.Rd] = uint64(int64(s1) / int64(s2))
			} else {
				m.regs[in.Rd] = uint64(int64(s1) % int64(s2))
			}
		case isa.IsCondBranch(in.Op):
			if condTaken(in.Op, m.regs[in.Rs1], m.regs[in.Rs2]) {
				next = in.Imm
			}
		case in.Op == isa.JAL:
			if in.Rd >= 0 {
				m.regs[in.Rd] = uint64(pc + 1)
			}
			next = in.Imm
		case in.Op == isa.JALR:
			target := int64(m.regs[in.Rs1]) + in.Imm
			if in.Rd >= 0 {
				m.regs[in.Rd] = uint64(pc + 1)
			}
			next = target
		case isa.IsStore(in.Op) && in.Op != isa.STADD:
			size := int(isa.MemSizeOf(in.Op))
			addr := m.regs[in.Rs1] + uint64(in.Imm)
			if !inRange(addr, size) {
				return Result{Halt: CrashPageFault, Output: m.out, ExcLog: m.exc, Steps: steps}
			}
			if addr%uint64(size) != 0 {
				m.exc = append(m.exc, uint32(pc)<<3|1) // ExcMisalign
			}
			m.store(addr, size, m.regs[in.Rs2])
		case in.Op == isa.STADD:
			addr := m.regs[in.Rs1] + uint64(in.Imm)
			if !inRange(addr, 8) {
				return Result{Halt: CrashPageFault, Output: m.out, ExcLog: m.exc, Steps: steps}
			}
			if addr%8 != 0 {
				// load µop then STA µop both fault; two log entries.
				m.exc = append(m.exc, uint32(pc)<<3|1, uint32(pc)<<3|1)
			}
			m.store(addr, 8, m.load(addr, 8, false)+m.regs[in.Rs2])
		case in.Op == isa.LDADD || in.Op == isa.LDXOR:
			addr := m.regs[in.Rs1] + uint64(in.Imm)
			if !inRange(addr, 8) {
				return Result{Halt: CrashPageFault, Output: m.out, ExcLog: m.exc, Steps: steps}
			}
			if addr%8 != 0 {
				m.exc = append(m.exc, uint32(pc)<<3|1)
			}
			v := m.load(addr, 8, false)
			if in.Op == isa.LDADD {
				m.regs[in.Rd] = v + m.regs[in.Rs2]
			} else {
				m.regs[in.Rd] = v ^ m.regs[in.Rs2]
			}
		case isa.IsLoad(in.Op):
			size := int(isa.MemSizeOf(in.Op))
			addr := m.regs[in.Rs1] + uint64(in.Imm)
			if !inRange(addr, size) {
				return Result{Halt: CrashPageFault, Output: m.out, ExcLog: m.exc, Steps: steps}
			}
			if addr%uint64(size) != 0 {
				m.exc = append(m.exc, uint32(pc)<<3|1)
			}
			signed := in.Op == isa.LW || in.Op == isa.LH || in.Op == isa.LB
			m.regs[in.Rd] = m.load(addr, size, signed)
		default:
			m.regs[in.Rd] = alu(in.Op, m.regs[in.Rs1], reg2(m, in), in.Imm)
		}
		pc = next
	}
	return Result{Halt: StepLimit, Output: m.out, ExcLog: m.exc, Steps: steps}
}

func reg2(m *machine, in isa.Inst) uint64 {
	if in.Rs2 < 0 {
		return 0
	}
	return m.regs[in.Rs2]
}

func alu(op isa.Op, s1, s2 uint64, imm int64) uint64 {
	switch op {
	case isa.ADD:
		return s1 + s2
	case isa.ADDI:
		return s1 + uint64(imm)
	case isa.SUB:
		return s1 - s2
	case isa.AND:
		return s1 & s2
	case isa.ANDI:
		return s1 & uint64(imm)
	case isa.OR:
		return s1 | s2
	case isa.ORI:
		return s1 | uint64(imm)
	case isa.XOR:
		return s1 ^ s2
	case isa.XORI:
		return s1 ^ uint64(imm)
	case isa.SLL:
		return s1 << (s2 & 63)
	case isa.SLLI:
		return s1 << (uint64(imm) & 63)
	case isa.SRL:
		return s1 >> (s2 & 63)
	case isa.SRLI:
		return s1 >> (uint64(imm) & 63)
	case isa.SRA:
		return uint64(int64(s1) >> (s2 & 63))
	case isa.SRAI:
		return uint64(int64(s1) >> (uint64(imm) & 63))
	case isa.MUL:
		return s1 * s2
	case isa.MULI:
		return s1 * uint64(imm)
	case isa.SLT:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case isa.SLTI:
		if int64(s1) < imm {
			return 1
		}
		return 0
	case isa.SLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	}
	return 0
}

func condTaken(op isa.Op, s1, s2 uint64) bool {
	switch op {
	case isa.BEQ:
		return s1 == s2
	case isa.BNE:
		return s1 != s2
	case isa.BLT:
		return int64(s1) < int64(s2)
	case isa.BGE:
		return int64(s1) >= int64(s2)
	case isa.BLTU:
		return s1 < s2
	case isa.BGEU:
		return s1 >= s2
	}
	return false
}
