package conformance

import (
	"fmt"
	"strings"
	"testing"

	"merlin/internal/asm"
	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
	"merlin/internal/interp"
	"merlin/internal/isa"
	"merlin/internal/workloads"
)

// smallConfig shrinks every structure so the same kernels also stress
// structural-hazard stalls, rename starvation and SQ-full backpressure.
func smallConfig() cpu.Config {
	cfg := cpu.DefaultConfig().WithRF(32).WithSQ(8).WithL1D(16 << 10)
	cfg.IQEntries = 8
	cfg.ROBEntries = 24
	return cfg
}

// TestGeneratedKernelsConform is the heart of the suite: every kernel
// class, many seeds, two core geometries, zero tolerated divergences.
func TestGeneratedKernelsConform(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for _, class := range gen.Classes() {
		t.Run(class, func(t *testing.T) {
			for seed := uint64(0); seed < uint64(seeds); seed++ {
				prog := gen.Kernel(class, seed)
				for name, cfg := range map[string]cpu.Config{"default": cpu.DefaultConfig(), "small": smallConfig()} {
					rep := Run(prog, Config{CPU: cfg})
					if rep.Timeout {
						t.Fatalf("%s seed %d (%s config): timeout after %d cycles", class, seed, name, rep.Cycles)
					}
					if rep.Divergence != nil {
						t.Fatalf("%s seed %d (%s config):\n%s", class, seed, name, rep.Divergence)
					}
					if rep.Retired == 0 {
						t.Fatalf("%s seed %d (%s config): kernel retired no instructions", class, seed, name)
					}
				}
			}
		})
	}
}

// TestKernelsDeterministic pins the generator contract the fuzz corpus
// and CLI rely on: same (class, seed) → byte-identical program, different
// seeds → different programs.
func TestKernelsDeterministic(t *testing.T) {
	for _, class := range gen.Classes() {
		a, b := gen.Kernel(class, 7), gen.Kernel(class, 7)
		if len(a.Text) != len(b.Text) {
			t.Fatalf("%s: same seed produced different program sizes", class)
		}
		for i := range a.Text {
			if a.Text[i] != b.Text[i] {
				t.Fatalf("%s: same seed diverged at instruction %d", class, i)
			}
		}
		c := gen.Kernel(class, 8)
		same := len(a.Text) == len(c.Text)
		if same {
			for i := range a.Text {
				if a.Text[i] != c.Text[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical programs", class)
		}
	}
}

// TestSabotageCaught is the oracle's self-test: an intentionally buggy
// core (every µop result bit-flipped from the middle of the run onward)
// must produce a first-divergence report naming the retiring PC.
func TestSabotageCaught(t *testing.T) {
	for _, class := range gen.Classes() {
		prog := gen.Kernel(class, 1)
		clean := Run(prog, Config{CPU: cpu.DefaultConfig()})
		if !clean.Conformant() {
			t.Fatalf("%s: clean run not conformant: %v", class, clean.Divergence)
		}
		bad := Run(prog, Config{
			CPU:          cpu.DefaultConfig(),
			SabotageSeq:  clean.LastSeq / 2,
			SabotageMask: 1 << 13,
		})
		d := bad.Divergence
		if d == nil {
			t.Fatalf("%s: sabotaged core passed conformance", class)
		}
		if d.RIP < 0 || d.RIP >= int64(len(prog.Text)) {
			t.Fatalf("%s: divergence does not name a valid retiring PC: rip %d", class, d.RIP)
		}
		r := d.String()
		if !strings.Contains(r, "divergence") || !strings.Contains(r, ">") {
			t.Fatalf("%s: report missing divergence header or window marker:\n%s", class, r)
		}
		if !strings.Contains(r, prog.Text[d.RIP].String()) {
			t.Fatalf("%s: report window does not show the instruction at rip %d:\n%s", class, d.RIP, r)
		}
	}
}

// TestSabotagedStoreData drives the sabotage through a store's data path
// and checks the divergence is attributed at the retiring store.
func TestSabotagedStoreData(t *testing.T) {
	prog := gen.Kernel("sq", 3)
	clean := Run(prog, Config{CPU: cpu.DefaultConfig()})
	if !clean.Conformant() {
		t.Fatalf("clean run not conformant: %v", clean.Divergence)
	}
	bad := Run(prog, Config{CPU: cpu.DefaultConfig(), SabotageSeq: clean.LastSeq / 3, SabotageMask: 0xff00})
	if bad.Divergence == nil {
		t.Fatal("sabotaged sq kernel passed conformance")
	}
	if bad.Retired >= clean.Retired {
		t.Fatalf("divergence not ahead of completion: retired %d of %d", bad.Retired, clean.Retired)
	}
}

// TestWorkloadLockstep runs real benchmark kernels — not generated ones —
// through the lockstep oracle, tying the conformance engine to the same
// programs campaigns inject faults into.
func TestWorkloadLockstep(t *testing.T) {
	names := []string{"qsort", "sha", "fft"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		rep := Run(w.Program(), Config{CPU: cpu.DefaultConfig(), MaxCycles: 50_000_000})
		if !rep.Conformant() {
			t.Fatalf("workload %s: timeout=%v divergence:\n%v", name, rep.Timeout, rep.Divergence)
		}
	}
}

// TestMemoryDivergenceDetected white-boxes the final page-walk diff,
// which no retire-boundary check covers: run the core and the reference
// on programs identical except for one stored value, and the post-run
// comparison must name the differing address.
func TestMemoryDivergenceDetected(t *testing.T) {
	src := func(v int) string {
		return "\tli r11, " + itoa(isa.DataBase) +
			"\n\tli r1, " + itoa(v) +
			"\n\tsd [r11+40], r1\n\tout r1\n\thalt\n"
	}
	progA := asm.MustAssemble("memA", src(0x11))
	progB := asm.MustAssemble("memB", src(0x22))
	run := func(prog *isa.Program) (*cpu.Core, *interp.Machine) {
		core := cpu.New(cpu.DefaultConfig(), prog)
		core.Run(1_000_000)
		ref := interp.NewMachine(prog)
		for ref.Step() {
		}
		if core.Halted() != cpu.HaltOK || ref.Halt() != interp.HaltOK {
			t.Fatalf("setup: core %v, ref %v", core.Halted(), ref.Halt())
		}
		return core, ref
	}
	coreA, refA := run(progA)
	if d := compareMemory(progA, coreA, refA, 8); d != nil {
		t.Fatalf("matched runs reported a memory divergence: %v", d)
	}
	_, refB := run(progB)
	d := compareMemory(progA, coreA, refB, 8)
	if d == nil {
		t.Fatal("differing memory images not detected")
	}
	if d.Kind != KindMemory {
		t.Fatalf("kind = %v, want %v", d.Kind, KindMemory)
	}
	if !strings.Contains(d.Detail, "0x1028") {
		t.Fatalf("detail does not name the differing address: %s", d.Detail)
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// TestTimeoutIsNotDivergence: an exhausted cycle budget must be reported
// as inconclusive, never as a divergence.
func TestTimeoutIsNotDivergence(t *testing.T) {
	prog := gen.Kernel("bp", 2)
	rep := Run(prog, Config{CPU: cpu.DefaultConfig(), MaxCycles: 50})
	if !rep.Timeout {
		t.Fatalf("expected timeout with a 50-cycle budget, got halt %v", rep.Halt)
	}
	if rep.Divergence != nil {
		t.Fatalf("timeout misreported as divergence: %v", rep.Divergence)
	}
	if rep.Conformant() {
		t.Fatal("timed-out run must not count as conformant")
	}
}

// TestStreamLockstep pushes a few fixed byte strings through the fuzz
// decoder and the oracle, so the fuzz path is covered even when `go test`
// runs without -fuzz.
func TestStreamLockstep(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("conformance"),
		func() []byte { // every opcode selector once, varied operands
			var d []byte
			for i := 0; i < 64; i++ {
				d = append(d, byte(i), byte(i*3), byte(i*5), byte(i*7), byte(i*11), byte(i>>3))
			}
			return d
		}(),
	}
	for i, data := range inputs {
		prog := gen.DecodeStream(data)
		rep := Run(prog, Config{CPU: cpu.DefaultConfig(), MaxCycles: 2_000_000})
		if rep.Timeout {
			t.Fatalf("input %d: timeout", i)
		}
		if rep.Divergence != nil {
			t.Fatalf("input %d:\n%s", i, rep.Divergence)
		}
	}
}
