package conformance

import (
	"testing"
	"time"

	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
)

// BenchmarkConformanceSuite measures one sweep of the generated-kernel
// conformance suite (every class, a handful of seeds, default core). The
// wall-ms metric feeds the PR benchmark trajectory (BENCH_PR7.json) via
// scripts/bench, tracking what a CI-sized certification pass costs.
func BenchmarkConformanceSuite(b *testing.B) {
	const seedsPerClass = 4
	cfg := cpu.DefaultConfig()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, class := range gen.Classes() {
			for seed := uint64(0); seed < seedsPerClass; seed++ {
				rep := Run(gen.Kernel(class, seed), Config{CPU: cfg})
				if !rep.Conformant() {
					b.Fatalf("%s seed %d: %v", class, seed, rep.Divergence)
				}
			}
		}
	}
	b.ReportMetric(time.Since(start).Seconds()*1000/float64(b.N), "wall-ms")
}
