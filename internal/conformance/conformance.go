// Package conformance is the lockstep differential oracle for the
// simulator core: it runs a program simultaneously on the detailed
// out-of-order core (internal/cpu) and the architectural reference
// interpreter (internal/interp), diffing registers, memory effects, the
// output stream and the exception log at every instruction-retire
// boundary — not just at halt. The first divergence is reported with the
// retiring PC, a disassembly window and both machines' architectural
// states, so a pipeline bug is pinned to the instruction that exposed it.
//
// On top of the engine, internal/conformance/gen emits seeded
// pseudo-random stress kernels per microarchitectural structure (register
// file, store queue, L1D, branch predictor, mixed-width memory), and
// FuzzLockstep mutates raw instruction streams. `merlin conformance`
// exposes the suite on the command line so a core configuration can be
// certified before a campaign trusts it.
package conformance

import (
	"fmt"
	"strings"

	"merlin/internal/cpu"
	"merlin/internal/interp"
	"merlin/internal/isa"
	"merlin/internal/mem"
)

// Kind classifies the first divergence found by a lockstep run.
type Kind string

// Divergence kinds, roughly ordered by how early in a retire they are
// detected.
const (
	KindPhantom   Kind = "phantom-retire" // core retired past the architectural halt
	KindControl   Kind = "control-flow"   // retired PC differs from the reference PC
	KindCrash     Kind = "crash"          // reference crashed on an instruction the core retired
	KindRegister  Kind = "register"       // architectural register mismatch after retire
	KindStore     Kind = "store"          // store address/size/data mismatch
	KindOutput    Kind = "output"         // OUT stream mismatch
	KindException Kind = "exception"      // exception log mismatch
	KindHalt      Kind = "halt"           // halt causes disagree
	KindMemory    Kind = "memory"         // final memory images differ
)

// Divergence describes the first point where the core and the reference
// disagreed.
type Divergence struct {
	Kind   Kind
	Seq    uint64 // µop sequence number of the retiring instruction (0 if end-of-run)
	RIP    int64  // the retiring PC at the divergence (-1 if end-of-run)
	Detail string // what differed, with both values

	Window   string                  // disassembly around RIP
	CoreRegs [isa.NumArchRegs]uint64 // committed architectural registers, core
	RefRegs  [isa.NumArchRegs]uint64 // architectural registers, reference
}

// String renders the full first-divergence report.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence (%s) at rip %d (seq %d): %s\n", d.Kind, d.RIP, d.Seq, d.Detail)
	if d.Window != "" {
		b.WriteString(d.Window)
	}
	b.WriteString("  regs (core | reference; * = differs):\n")
	for i := 0; i < isa.NumArchRegs; i++ {
		marker := " "
		if d.CoreRegs[i] != d.RefRegs[i] {
			marker = "*"
		}
		fmt.Fprintf(&b, "  %sr%-2d %#18x | %#18x\n", marker, i, d.CoreRegs[i], d.RefRegs[i])
	}
	return b.String()
}

// Config parameterises a lockstep run.
type Config struct {
	CPU       cpu.Config
	MaxCycles uint64 // core cycle budget; 0 = 10M
	MemDiffs  int    // max memory mismatches listed in one report; 0 = 8

	// SabotageSeq, when non-zero, installs a test-only result mutator in
	// the core (cpu.SetResultMutator) that XORs SabotageMask into every
	// µop result from that sequence number on — an intentionally buggy
	// core the oracle must catch. Used by self-tests and
	// `merlin conformance -selftest`; leave zero for real certification.
	SabotageSeq  uint64
	SabotageMask uint64
}

// Report is the outcome of one lockstep run.
type Report struct {
	Name       string
	Retired    uint64 // macro-instructions retired by the core
	Cycles     uint64
	Halt       cpu.HaltReason
	LastSeq    uint64 // µop seq of the last retired instruction
	Timeout    bool   // core exhausted MaxCycles; inconclusive, not a divergence
	Divergence *Divergence
}

// Conformant reports whether the run completed without divergence or
// timeout.
func (r *Report) Conformant() bool { return r.Divergence == nil && !r.Timeout }

// haltMap translates reference halt causes into core halt causes.
var haltMap = map[interp.HaltReason]cpu.HaltReason{
	interp.HaltOK:         cpu.HaltOK,
	interp.CrashPageFault: cpu.CrashPageFault,
	interp.CrashBadFetch:  cpu.CrashBadFetch,
	interp.CrashDivZero:   cpu.CrashDivZero,
}

// Run executes prog on both machines in lockstep and returns the report.
func Run(prog *isa.Program, cfg Config) *Report {
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 10_000_000
	}
	core := cpu.New(cfg.CPU, prog)
	ref := interp.NewMachine(prog)
	rep := &Report{Name: prog.Name}

	if cfg.SabotageSeq != 0 {
		mask := cfg.SabotageMask
		if mask == 0 {
			mask = 1 << 17
		}
		//lint:allow testhook001 conformance -selftest is the sanctioned sabotage path: it corrupts the core to prove the oracle catches it
		core.SetResultMutator(func(seq uint64, op isa.Op, result uint64) uint64 {
			if seq >= cfg.SabotageSeq {
				return result ^ mask
			}
			return result
		})
	}

	// The witness buffers retire events; they are drained and checked
	// after every core cycle so the reference never runs ahead.
	var events []cpu.RetireEvent
	core.SetRetireWitness(func(ev cpu.RetireEvent) { events = append(events, ev) })

	for core.Halted() == cpu.Running && core.Cycle() < maxCycles && rep.Divergence == nil {
		core.Step()
		for i := range events {
			rep.Retired++
			rep.LastSeq = events[i].Seq
			if d := checkRetire(prog, core, ref, &events[i]); d != nil {
				rep.Divergence = d
				break
			}
		}
		events = events[:0]
	}
	rep.Cycles = core.Cycle()
	rep.Halt = core.Halted()
	if rep.Divergence != nil {
		return rep
	}
	if core.Halted() == cpu.Running || core.Halted() == cpu.CycleLimit {
		rep.Timeout = true
		return rep
	}

	// End of the retire stream: the reference's next step must reproduce
	// the core's halt cause (HALT or the crashing instruction, which
	// never retires on either machine).
	if ref.Step() {
		rep.Divergence = endDivergence(prog, core, ref, KindHalt,
			fmt.Sprintf("core halted (%v) but the reference is still running at pc %d", core.Halted(), ref.PC()))
		return rep
	}
	if want := haltMap[ref.Halt()]; core.Halted() != want {
		rep.Divergence = endDivergence(prog, core, ref, KindHalt,
			fmt.Sprintf("halt cause %v, reference says %v", core.Halted(), want))
		return rep
	}
	if d := compareLogs(prog, core, ref); d != nil {
		rep.Divergence = d
		return rep
	}
	if core.Halted() == cpu.HaltOK {
		rep.Divergence = compareMemory(prog, core, ref, cfg.MemDiffs)
	}
	return rep
}

// checkRetire validates one retired macro-instruction against one
// reference step.
func checkRetire(prog *isa.Program, core *cpu.Core, ref *interp.Machine, ev *cpu.RetireEvent) *Divergence {
	if ref.Done() {
		return newDivergence(prog, ev, ref, KindPhantom,
			fmt.Sprintf("core retired %v past the architectural end of the program (%v)", ev.Inst, ref.Halt()))
	}
	if ev.RIP != ref.PC() {
		return newDivergence(prog, ev, ref, KindControl,
			fmt.Sprintf("core retired rip %d but the reference is at pc %d", ev.RIP, ref.PC()))
	}
	if !ref.Step() {
		return newDivergence(prog, ev, ref, KindCrash,
			fmt.Sprintf("core retired %v but the reference %v here", ev.Inst, ref.Halt()))
	}
	if ev.Regs != ref.Regs() {
		refRegs := ref.Regs()
		for i := range ev.Regs {
			if ev.Regs[i] != refRegs[i] {
				return newDivergence(prog, ev, ref, KindRegister,
					fmt.Sprintf("r%d = %#x after %v, reference says %#x", i, ev.Regs[i], ev.Inst, refRegs[i]))
			}
		}
	}
	if addr, size, data, ok := ref.LastStore(); ok != ev.HasStore {
		return newDivergence(prog, ev, ref, KindStore,
			fmt.Sprintf("store effect mismatch for %v: core stored=%v, reference stored=%v", ev.Inst, ev.HasStore, ok))
	} else if ok && (addr != ev.StoreAddr || size != ev.StoreSize || data != ev.StoreData) {
		return newDivergence(prog, ev, ref, KindStore,
			fmt.Sprintf("%v stored %#x (%d bytes) at %#x, reference stored %#x (%d bytes) at %#x",
				ev.Inst, ev.StoreData, ev.StoreSize, ev.StoreAddr, data, size, addr))
	}
	if ev.OutputLen != len(ref.Output()) {
		return newDivergence(prog, ev, ref, KindOutput,
			fmt.Sprintf("output stream has %d entries after %v, reference has %d", ev.OutputLen, ev.Inst, len(ref.Output())))
	}
	if ev.HasOut {
		if want := ref.Output()[len(ref.Output())-1]; ev.Out != want {
			return newDivergence(prog, ev, ref, KindOutput,
				fmt.Sprintf("out emitted %#x, reference emitted %#x", ev.Out, want))
		}
	}
	coreExc, refExc := core.ExcLog(), ref.ExcLog()
	if ev.ExcLogLen != len(refExc) {
		return newDivergence(prog, ev, ref, KindException,
			fmt.Sprintf("exception log has %d entries after %v, reference has %d", ev.ExcLogLen, ev.Inst, len(refExc)))
	}
	for i := ev.ExcLogLen - 1; i >= 0 && i >= ev.ExcLogLen-2; i-- { // at most 2 new entries per retire
		if coreExc[i] != refExc[i] {
			return newDivergence(prog, ev, ref, KindException,
				fmt.Sprintf("exception log[%d] = %#x, reference logged %#x", i, coreExc[i], refExc[i]))
		}
	}
	return nil
}

// compareLogs does the full end-of-run output and exception comparison, a
// backstop behind the incremental per-retire checks.
func compareLogs(prog *isa.Program, core *cpu.Core, ref *interp.Machine) *Divergence {
	co, ro := core.Output(), ref.Output()
	if len(co) != len(ro) {
		return endDivergence(prog, core, ref, KindOutput,
			fmt.Sprintf("final output has %d entries, reference has %d", len(co), len(ro)))
	}
	for i := range co {
		if co[i] != ro[i] {
			return endDivergence(prog, core, ref, KindOutput,
				fmt.Sprintf("final output[%d] = %#x, reference says %#x", i, co[i], ro[i]))
		}
	}
	ce, re := core.ExcLog(), ref.ExcLog()
	if len(ce) != len(re) {
		return endDivergence(prog, core, ref, KindException,
			fmt.Sprintf("final exception log has %d entries, reference has %d", len(ce), len(re)))
	}
	for i := range ce {
		if ce[i] != re[i] {
			return endDivergence(prog, core, ref, KindException,
				fmt.Sprintf("final exception log[%d] = %#x, reference says %#x", i, ce[i], re[i]))
		}
	}
	return nil
}

// compareMemory diffs the final architectural memory images page by page.
// Draining the core's committed stores and flushing its caches first makes
// its main memory the complete architectural image; untouched pages read
// as zeros on both machines.
func compareMemory(prog *isa.Program, core *cpu.Core, ref *interp.Machine, limit int) *Divergence {
	if limit <= 0 {
		limit = 8
	}
	core.DrainPendingStores()
	core.FlushDataCaches()
	var diffs []string
	for base := uint64(isa.DataBase); base < isa.MemTop; base += mem.PageSize {
		cp, rp := core.PageData(base), ref.PageData(base)
		if cp == nil && rp == nil {
			continue
		}
		for i := 0; i < mem.PageSize && len(diffs) < limit; i++ {
			var cb, rb byte
			if cp != nil {
				cb = cp[i]
			}
			if rp != nil {
				rb = rp[i]
			}
			if cb != rb {
				diffs = append(diffs, fmt.Sprintf("[%#x] = %#02x, reference says %#02x", base+uint64(i), cb, rb))
			}
		}
		if len(diffs) >= limit {
			break
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	return endDivergence(prog, core, ref, KindMemory,
		fmt.Sprintf("final memory differs at %d+ bytes: %s", len(diffs), strings.Join(diffs, "; ")))
}

func newDivergence(prog *isa.Program, ev *cpu.RetireEvent, ref *interp.Machine, kind Kind, detail string) *Divergence {
	return &Divergence{
		Kind: kind, Seq: ev.Seq, RIP: ev.RIP, Detail: detail,
		Window: window(prog, ev.RIP), CoreRegs: ev.Regs, RefRegs: ref.Regs(),
	}
}

// endDivergence builds a divergence for end-of-run checks, where there is
// no retiring instruction; the reference PC anchors the window.
func endDivergence(prog *isa.Program, core *cpu.Core, ref *interp.Machine, kind Kind, detail string) *Divergence {
	return &Divergence{
		Kind: kind, Seq: 0, RIP: ref.PC(), Detail: detail,
		Window: window(prog, ref.PC()), CoreRegs: core.ArchRegs(), RefRegs: ref.Regs(),
	}
}

// window disassembles the instructions around rip, marking it with ">".
func window(prog *isa.Program, rip int64) string {
	lo, hi := rip-3, rip+4
	if lo < 0 {
		lo = 0
	}
	if hi > int64(len(prog.Text)) {
		hi = int64(len(prog.Text))
	}
	var b strings.Builder
	for pc := lo; pc < hi; pc++ {
		marker := " "
		if pc == rip {
			marker = ">"
		}
		fmt.Fprintf(&b, "  %s %4d: %s\n", marker, pc, prog.Text[pc])
	}
	return b.String()
}
