// Package gen emits seeded pseudo-random stress kernels for the lockstep
// conformance engine. Each kernel class targets one microarchitectural
// structure of the core — the structures MeRLiN injects faults into plus
// the speculation machinery — so a pipeline bug in that structure has a
// short path to an architectural divergence:
//
//	rf     register-file pressure: long dependency chains over every
//	       allocatable register, forcing rename/free-list churn
//	sq     store-queue storms: overlapping stores and loads of mixed
//	       widths through one hot buffer, exercising store-to-load
//	       forwarding, partial overlaps and the atomic read-modify ops
//	l1d    L1D set-conflict walker: strided write/read-back sweeps that
//	       thrash a handful of cache sets through fills and write-backs
//	bp     branch-predictor pathology: data-dependent branches on an
//	       in-register LCG, biased loops and two-target indirect jumps
//	mixed  mixed-width memory: partial-register-width stores over wider
//	       slots with sign/zero-extending read-back, including misaligned
//	       accesses that must log identical recoverable exceptions
//
// Kernels are generated as assembler source and built with internal/asm,
// so a divergence report's disassembly window reads like the hand-written
// workloads. Every kernel terminates by construction: all loops are
// counted with dedicated registers the random body never writes.
package gen

import (
	"fmt"
	"strings"

	"merlin/internal/asm"
	"merlin/internal/isa"
)

// Classes lists the kernel classes in stable order.
func Classes() []string { return []string{"rf", "sq", "l1d", "bp", "mixed"} }

// Kernel builds the seeded stress kernel for class. Distinct seeds give
// distinct instruction sequences; the same (class, seed) pair always
// yields the same program. Unknown classes panic — callers enumerate
// Classes().
func Kernel(class string, seed uint64) *isa.Program {
	r := &rng{state: seed ^ 0xa076_1d64_78bd_642f}
	var body string
	switch class {
	case "rf":
		body = genRF(r)
	case "sq":
		body = genSQ(r)
	case "l1d":
		body = genL1D(r)
	case "bp":
		body = genBP(r)
	case "mixed":
		body = genMixed(r)
	default:
		panic(fmt.Sprintf("gen: unknown kernel class %q", class))
	}
	return asm.MustAssemble(fmt.Sprintf("%s-%d", class, seed), body)
}

// rng is splitmix64: deterministic across Go versions, so checked-in
// expectations and fuzz corpora never rot when the toolchain moves.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e37_79b9_7f4a_7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58_476d_1ce4_e5b9
	z = (z ^ (z >> 27)) * 0x94d0_49bb_1331_11eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(s []string) string { return s[r.intn(len(s))] }

// Register conventions shared by all kernels: r1..r9 are scratch the
// random body may clobber, r10 accumulates the checksum, r11 is the
// buffer base, r12 is a dedicated zero (µx64 has no hardwired zero
// register) and r13/r3 hold loop counters the body never writes.

// prologue seeds the scratch registers and the loop counter.
func prologue(b *strings.Builder, r *rng, iters int) {
	for reg := 1; reg <= 10; reg++ {
		fmt.Fprintf(b, "\tli r%d, %d\n", reg, int64(r.next()))
	}
	fmt.Fprintf(b, "\tli r12, 0\n\tli r13, %d\n", iters)
}

// epilogue drains every live register into the output stream — the
// architectural signature the oracle compares — and halts.
func epilogue(b *strings.Builder) {
	for reg := 1; reg <= 11; reg++ {
		fmt.Fprintf(b, "\tout r%d\n", reg)
	}
	b.WriteString("\thalt\n")
}

// genRF emits register-file pressure chains: dense ALU traffic over all
// scratch registers, mixing long serial dependency chains (rename, free
// list and bypass pressure) with independent work that keeps the issue
// queue full.
func genRF(r *rng) string {
	var b strings.Builder
	prologue(&b, r, 6+r.intn(6))
	b.WriteString("loop:\n")
	regOps := []string{"add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mul", "slt", "sltu"}
	immOps := []string{"addi", "xori", "ori", "andi", "slli", "srli", "srai", "muli", "slti"}
	n := 30 + r.intn(30)
	for i := 0; i < n; i++ {
		rd := 1 + r.intn(9)
		switch r.intn(10) {
		case 0, 1, 2: // immediate form
			op := r.pick(immOps)
			imm := int64(r.intn(255)) - 127
			if strings.HasPrefix(op, "s") && op != "slti" { // shift amounts
				imm = int64(r.intn(64))
			}
			fmt.Fprintf(&b, "\t%s r%d, r%d, %d\n", op, rd, 1+r.intn(9), imm)
		case 3: // guarded divide: ori the divisor odd so it cannot be zero
			div := 1 + r.intn(9)
			fmt.Fprintf(&b, "\tori r%d, r%d, 1\n", div, div)
			op := "div"
			if r.intn(2) == 0 {
				op = "rem"
			}
			fmt.Fprintf(&b, "\t%s r%d, r%d, r%d\n", op, rd, 1+r.intn(9), div)
		case 4: // serial chain segment: rd feeds itself
			fmt.Fprintf(&b, "\t%s r%d, r%d, r%d\n", r.pick(regOps), rd, rd, 1+r.intn(9))
		default:
			fmt.Fprintf(&b, "\t%s r%d, r%d, r%d\n", r.pick(regOps), rd, 1+r.intn(9), 1+r.intn(9))
		}
		if r.intn(8) == 0 {
			fmt.Fprintf(&b, "\tadd r10, r10, r%d\n", rd)
		}
	}
	b.WriteString("\taddi r13, r13, -1\n\tbne r13, r12, loop\n")
	epilogue(&b)
	return b.String()
}

// genSQ emits store-queue aliasing and forwarding storms: bursts of
// mixed-width stores at overlapping offsets of one 256-byte buffer, each
// chased by loads that must forward from the youngest covering store (or
// merge store bytes with cache bytes on partial overlap), plus the
// ldadd/ldxor/stadd read-modify ops whose cracked µop chains live in the
// same queue.
func genSQ(r *rng) string {
	var b strings.Builder
	b.WriteString("\tli r11, buf\n")
	prologue(&b, r, 4+r.intn(4))
	b.WriteString("loop:\n")
	stores := []struct {
		op    string
		align int
	}{{"sd", 8}, {"sw", 4}, {"sh", 2}, {"sb", 1}}
	loads := []struct {
		op    string
		align int
	}{{"ld", 8}, {"lw", 4}, {"lwu", 4}, {"lh", 2}, {"lhu", 2}, {"lb", 1}, {"lbu", 1}}
	n := 24 + r.intn(24)
	hot := r.intn(64) & ^7 // the aliasing hot spot all widths overlap
	for i := 0; i < n; i++ {
		switch r.intn(8) {
		case 0, 1, 2: // store, usually into the hot spot
			s := stores[r.intn(len(stores))]
			off := hot + r.intn(16)&^(s.align-1)
			if r.intn(4) == 0 {
				off = r.intn(248) &^ (s.align - 1)
			}
			fmt.Fprintf(&b, "\t%s [r11+%d], r%d\n", s.op, off, 1+r.intn(9))
		case 3, 4, 5: // load chasing the hot spot, checksum the value
			l := loads[r.intn(len(loads))]
			off := hot + r.intn(16)&^(l.align-1)
			rd := 1 + r.intn(9)
			fmt.Fprintf(&b, "\t%s r%d, [r11+%d]\n", l.op, rd, off)
			fmt.Fprintf(&b, "\tadd r10, r10, r%d\n", rd)
		case 6: // read-modify macro-ops on an aligned slot
			off := hot + r.intn(2)*8
			switch r.intn(3) {
			case 0:
				fmt.Fprintf(&b, "\tstadd [r11+%d], r%d\n", off, 1+r.intn(9))
			case 1:
				fmt.Fprintf(&b, "\tldadd r%d, r%d, [r11+%d]\n", 1+r.intn(9), 1+r.intn(9), off)
			default:
				fmt.Fprintf(&b, "\tldxor r%d, r%d, [r11+%d]\n", 1+r.intn(9), 1+r.intn(9), off)
			}
		default: // ALU filler so stores retire under pressure
			fmt.Fprintf(&b, "\txor r%d, r%d, r%d\n", 1+r.intn(9), 1+r.intn(9), 1+r.intn(9))
		}
	}
	b.WriteString("\taddi r13, r13, -1\n\tbne r13, r12, loop\n")
	epilogue(&b)
	b.WriteString(".data\nbuf:\t.space 256\n")
	return b.String()
}

// genL1D emits a set-conflict walker: a nested sweep that writes and
// reads back lines at a large power-of-two stride, so a handful of L1D
// sets absorb every fill, eviction and write-back while the rest of the
// cache stays cold.
func genL1D(r *rng) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\tli r11, %d\n", isa.DataBase)
	prologue(&b, r, 3+r.intn(3))
	stride := 0x1000 << r.intn(3) // 4/8/16KB: same set in a 32KB 4-way L1D
	lines := 8 + r.intn(24)       // stride*lines tops out well under MemTop
	fmt.Fprintf(&b, "\tli r8, %d\n", stride)
	b.WriteString("outer:\n\tmv r2, r11\n")
	fmt.Fprintf(&b, "\tli r3, %d\n", lines)
	b.WriteString("inner:\n")
	for i, n := 0, 2+r.intn(3); i < n; i++ {
		off := r.intn(8) * 8 // stay inside the line
		if r.intn(2) == 0 {
			fmt.Fprintf(&b, "\tsd [r2+%d], r%d\n", off, 1+r.intn(9))
		} else {
			rd := 4 + r.intn(4)
			fmt.Fprintf(&b, "\tld r%d, [r2+%d]\n", rd, off)
			fmt.Fprintf(&b, "\tadd r10, r10, r%d\n", rd)
		}
	}
	b.WriteString("\tadd r2, r2, r8\n")
	fmt.Fprintf(&b, "\txor r1, r1, r2\n")
	b.WriteString("\taddi r3, r3, -1\n\tbne r3, r12, inner\n")
	b.WriteString("\taddi r13, r13, -1\n\tbne r13, r12, outer\n")
	epilogue(&b)
	return b.String()
}

// genBP emits branch-predictor pathology: branches conditioned on the
// bits of an in-register LCG (patternless for the tournament tables), a
// short biased loop nested inside, and an indirect jump that alternates
// between two targets so the BTB keeps mispredicting.
func genBP(r *rng) string {
	var b strings.Builder
	prologue(&b, r, 24+r.intn(24))
	// LCG constants: any odd multiplier works; the seed varies both.
	fmt.Fprintf(&b, "\tli r8, %d\n", int64(r.next()|1))
	fmt.Fprintf(&b, "\tli r9, %d\n", int64(r.next()))
	b.WriteString("loop:\n")
	b.WriteString("\tmul r1, r1, r8\n\tadd r1, r1, r9\n")
	for i, n := 0, 3+r.intn(4); i < n; i++ {
		shift := 5 + r.intn(40)
		fmt.Fprintf(&b, "\tsrli r2, r1, %d\n\tandi r2, r2, 1\n", shift)
		fmt.Fprintf(&b, "\tbeq r2, r12, skip%d\n", i)
		fmt.Fprintf(&b, "\taddi r10, r10, %d\n\txor r10, r10, r1\n", 1+r.intn(100))
		fmt.Fprintf(&b, "skip%d:\n", i)
	}
	// Data-dependent trip count 1..4: a loop the local predictor cannot
	// settle on.
	b.WriteString("\tandi r4, r1, 3\n\taddi r4, r4, 1\nbiased:\n")
	b.WriteString("\tadd r10, r10, r4\n\taddi r4, r4, -1\n\tbne r4, r12, biased\n")
	// Two-target indirect jump chosen by an LCG bit.
	b.WriteString("\tli r5, patha\n\tandi r6, r1, 16\n\tbeq r6, r12, dojump\n\tli r5, pathb\ndojump:\n")
	b.WriteString("\tjalr r7, r5, 0\n")
	b.WriteString("patha:\n\taddi r10, r10, 3\n\tj join\n")
	b.WriteString("pathb:\n\txori r10, r10, 5\n")
	b.WriteString("join:\n\taddi r13, r13, -1\n\tbne r13, r12, loop\n")
	epilogue(&b)
	return b.String()
}

// genMixed emits mixed-width partial writes: narrow stores punched into
// wider slots, re-read at every width with both extensions, plus
// deliberately misaligned accesses whose recoverable-exception log
// entries must match the reference instruction for instruction.
func genMixed(r *rng) string {
	var b strings.Builder
	b.WriteString("\tli r11, buf\n")
	prologue(&b, r, 4+r.intn(4))
	b.WriteString("loop:\n")
	n := 20 + r.intn(20)
	for i := 0; i < n; i++ {
		slot := r.intn(12) * 8
		switch r.intn(10) {
		case 0, 1: // lay down a full word
			fmt.Fprintf(&b, "\tsd [r11+%d], r%d\n", slot, 1+r.intn(9))
		case 2, 3: // punch a narrow store into it
			sub := []string{"sb", "sh", "sw"}[r.intn(3)]
			width := map[string]int{"sb": 1, "sh": 2, "sw": 4}[sub]
			fmt.Fprintf(&b, "\t%s [r11+%d], r%d\n", sub, slot+r.intn(8)&^(width-1), 1+r.intn(9))
		case 4: // misaligned store: logs ExcMisalign on both machines
			fmt.Fprintf(&b, "\tsw [r11+%d], r%d\n", slot+1+r.intn(3), 1+r.intn(9))
		case 5: // misaligned load
			rd := 1 + r.intn(9)
			fmt.Fprintf(&b, "\tlh r%d, [r11+%d]\n", rd, slot+1)
			fmt.Fprintf(&b, "\tadd r10, r10, r%d\n", rd)
		default: // read back at a random width and extension
			l := []string{"ld", "lw", "lwu", "lh", "lhu", "lb", "lbu"}[r.intn(7)]
			width := map[string]int{"ld": 8, "lw": 4, "lwu": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}[l]
			rd := 1 + r.intn(9)
			fmt.Fprintf(&b, "\t%s r%d, [r11+%d]\n", l, rd, slot+r.intn(8)&^(width-1))
			fmt.Fprintf(&b, "\txor r10, r10, r%d\n", rd)
		}
	}
	b.WriteString("\taddi r13, r13, -1\n\tbne r13, r12, loop\n")
	epilogue(&b)
	b.WriteString(".data\nbuf:\t.space 128\n")
	return b.String()
}
