package gen

import (
	"fmt"

	"merlin/internal/isa"
)

// Stream-decoding limits: each 6-byte record becomes one instruction, and
// the body is re-run by a counted outer loop so single-pass coverage of
// squash/replay paths multiplies without risking non-termination.
const (
	recSize    = 6   // op, rd, rs1, rs2, imm lo, imm hi
	maxBody    = 512 // instruction cap, bounds fuzz execution time
	streamRuns = 4   // outer-loop trip count
)

// streamOps is the opcode pool fuzz bytes index into. JALR is excluded
// (an arbitrary indirect target is almost always a bad fetch, which ends
// the run on the first record) and HALT/NOP add nothing the epilogue and
// skipped records don't already cover.
var streamOps = []isa.Op{
	isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA,
	isa.MUL, isa.DIV, isa.REM, isa.SLT, isa.SLTU,
	isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI,
	isa.SLTI, isa.MULI, isa.LI,
	isa.LD, isa.LW, isa.LWU, isa.LH, isa.LHU, isa.LB, isa.LBU,
	isa.SD, isa.SW, isa.SH, isa.SB,
	isa.LDADD, isa.LDXOR, isa.STADD,
	isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU,
	isa.JAL, isa.OUT,
}

// DecodeStream sanitises an arbitrary byte string into a valid,
// always-terminating µx64 program, so every fuzz input exercises the
// pipeline instead of dying on decode. The grammar keeps the interesting
// degrees of freedom — opcode mix, register pressure, memory aliasing,
// misalignment, data-dependent control flow, even architectural crashes —
// while forcing the properties termination needs:
//
//   - rd is drawn from r1..r9 only, so the buffer base (r11), the zero
//     register (r12) and the loop counter (r13) survive the body;
//   - branch and jump targets are strictly forward, making the body a
//     DAG; iteration comes solely from the counted outer loop;
//   - memory operands are r11-relative with mostly in-range offsets; a
//     1-in-16 slice decodes to a far offset that may fault, which both
//     machines must agree on.
func DecodeStream(data []byte) *isa.Program {
	n := len(data) / recSize
	if n > maxBody {
		n = maxBody
	}
	const base = 3 // prologue length; body occupies [base, base+n)
	text := make([]isa.Inst, 0, base+n+14)
	text = append(text,
		isa.Inst{Op: isa.LI, Rd: 11, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: isa.DataBase},
		isa.Inst{Op: isa.LI, Rd: 12, Rs1: isa.NoReg, Rs2: isa.NoReg},
		isa.Inst{Op: isa.LI, Rd: 13, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: streamRuns},
	)
	for i := 0; i < n; i++ {
		rec := data[i*recSize : i*recSize+recSize]
		op := streamOps[int(rec[0])%len(streamOps)]
		rd := int8(1 + rec[1]%9)
		rs1 := int8(rec[2] % 14) // any of r0..r13 is readable
		rs2 := int8(rec[3] % 14)
		u16 := uint64(rec[4]) | uint64(rec[5])<<8
		in := isa.Inst{Op: op, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}
		switch {
		case op == isa.LI:
			in.Rd, in.Imm = rd, int64(int16(u16))<<(rec[2]%32)
		case op == isa.OUT:
			in.Rs1 = rs1
		case op == isa.JAL:
			in.Rd, in.Imm = rd, forward(base, n, i, u16)
		case isa.IsCondBranch(op):
			in.Rs1, in.Rs2, in.Imm = rs1, rs2, forward(base, n, i, u16)
		case isa.IsStore(op) && op != isa.STADD:
			in.Rs1, in.Rs2, in.Imm = 11, rs2, memOffset(u16, rec[3])
		case op == isa.STADD:
			in.Rs1, in.Rs2, in.Imm = 11, rs2, memOffset(u16, rec[3])
		case op == isa.LDADD || op == isa.LDXOR:
			in.Rd, in.Rs1, in.Rs2, in.Imm = rd, 11, rs2, memOffset(u16, rec[3])
		case isa.IsLoad(op):
			in.Rd, in.Rs1, in.Imm = rd, 11, memOffset(u16, rec[3])
		case op == isa.ADDI || op == isa.ANDI || op == isa.ORI || op == isa.XORI ||
			op == isa.SLLI || op == isa.SRLI || op == isa.SRAI || op == isa.SLTI ||
			op == isa.MULI:
			in.Rd, in.Rs1, in.Imm = rd, rs1, int64(int16(u16))
		default: // three-register ALU, including DIV/REM (div-zero crashes
			// architecturally and both machines must agree)
			in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		}
		text = append(text, in)
	}
	// Tail: outer loop back-edge, then drain the registers and halt.
	text = append(text,
		isa.Inst{Op: isa.ADDI, Rd: 13, Rs1: 13, Rs2: isa.NoReg, Imm: -1},
		isa.Inst{Op: isa.BNE, Rd: isa.NoReg, Rs1: 13, Rs2: 12, Imm: base},
	)
	for r := int8(1); r <= 11; r++ {
		text = append(text, isa.Inst{Op: isa.OUT, Rd: isa.NoReg, Rs1: r, Rs2: isa.NoReg})
	}
	text = append(text, isa.Inst{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg})
	return &isa.Program{
		Name:    fmt.Sprintf("stream-%d", n),
		Text:    text,
		Symbols: map[string]int64{},
	}
}

// forward maps fuzz bytes to a strictly-forward branch target inside the
// body (or its back-edge tail, which is still forward from any body PC).
func forward(base, n, i int, u16 uint64) int64 {
	pc := base + i
	span := base + n - pc // ≥ 1: at least the tail is ahead
	return int64(pc + 1 + int(u16)%span)
}

// memOffset decodes a mostly in-range r11-relative offset. Offsets are
// deliberately unaligned sometimes (recoverable misalign exceptions);
// one record in 16 decodes to a far offset that may leave mapped memory,
// so architectural page faults are exercised too.
func memOffset(u16 uint64, salt byte) int64 {
	if salt%16 == 0 {
		return int64(int16(u16)) * 257
	}
	return int64(u16 % 4032)
}
