package conformance

import (
	"testing"

	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
)

// FuzzLockstep feeds arbitrary byte strings through the stream sanitiser
// (gen.DecodeStream) into the lockstep oracle: every decoded program must
// run divergence-free on the detailed core. The sanitiser guarantees
// termination, so the only acceptable outcomes are a clean halt, an
// architectural crash both machines agree on, or a cycle-budget timeout
// (inconclusive, not a failure). Seed corpus: testdata/fuzz/FuzzLockstep.
func FuzzLockstep(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("lockstep"))
	var every []byte
	for i := 0; i < 48; i++ { // one record per opcode selector
		every = append(every, byte(i), byte(i*3), byte(i*5), byte(i*7), byte(i*13), byte(i>>4))
	}
	f.Add(every)

	cfg := cpu.DefaultConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := gen.DecodeStream(data)
		rep := Run(prog, Config{CPU: cfg, MaxCycles: 2_000_000})
		if rep.Divergence != nil {
			t.Fatalf("lockstep divergence on fuzzed stream:\n%s", rep.Divergence)
		}
	})
}
