// Package campaign runs fault-injection campaigns: a golden (fault-free)
// reference run, followed by one deterministic re-execution per fault with
// a single bit flipped at its cycle, classified against the golden run into
// the paper's six fault-effect categories (Table 2).
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/isa"
	"merlin/internal/lifetime"
)

// Outcome is a fault-effect class (paper Table 2, plus Unknown for the
// truncated-run classification of Table 4 and Cancelled for faults a
// context-cancelled campaign never injected).
type Outcome uint8

// Fault-effect classes.
const (
	Masked    Outcome = iota // output and exceptions identical to golden
	SDC                      // output corrupted, no abnormal behaviour
	DUE                      // output intact but extra/missing exceptions
	Timeout                  // execution exceeded 3x the golden cycle count
	Crash                    // simulated process or simulator died
	Assert                   // simulator stopped on an internal assertion
	Unknown                  // truncated run: fault still live at the cut
	Cancelled                // campaign cancelled before this fault was injected
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"Masked", "SDC", "DUE", "Timeout", "Crash", "Assert", "Unknown", "Cancelled"}

// String returns the class name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "?"
}

// ParseOutcome maps a class name ("Masked", "SDC", ..., in any case) back
// to its Outcome.
func ParseOutcome(name string) (Outcome, error) {
	for o, n := range outcomeNames {
		if strings.EqualFold(name, n) {
			return Outcome(o), nil
		}
	}
	return Masked, fmt.Errorf("unknown fault-effect class %q", name)
}

// MarshalText renders the class name, so JSON carrying an Outcome reads
// "SDC" instead of a bare int.
func (o Outcome) MarshalText() ([]byte, error) {
	if int(o) >= len(outcomeNames) {
		return nil, fmt.Errorf("cannot marshal unknown outcome %d", uint8(o))
	}
	return []byte(outcomeNames[o]), nil
}

// UnmarshalText parses a class name case-insensitively, round-tripping
// MarshalText.
func (o *Outcome) UnmarshalText(text []byte) error {
	v, err := ParseOutcome(string(text))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// Dist is a distribution of outcomes.
type Dist [NumOutcomes]int

// Add counts one outcome.
func (d *Dist) Add(o Outcome) { d[o]++ }

// AddN counts n occurrences of an outcome (used when a group
// representative's outcome is extrapolated to the whole group).
func (d *Dist) AddN(o Outcome, n int) { d[o] += n }

// Total returns the number of classified faults.
func (d *Dist) Total() int {
	t := 0
	for _, n := range d {
		t += n
	}
	return t
}

// Share returns the fraction of outcome o.
func (d *Dist) Share(o Outcome) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(d[o]) / float64(t)
}

// AVF is the injection-based architectural vulnerability factor: the
// non-masked fraction (§4.4.3.3).
func (d *Dist) AVF() float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(t-d[Masked]) / float64(t)
}

// FIT converts the AVF into a failures-in-time rate given the structure's
// bit count and the raw per-bit FIT rate (the paper uses 0.01 FIT/bit).
func (d *Dist) FIT(bits int, rawFITPerBit float64) float64 {
	return d.AVF() * rawFITPerBit * float64(bits)
}

// String formats the distribution as percentages.
func (d Dist) String() string {
	t := d.Total()
	if t == 0 {
		return "(empty)"
	}
	s := ""
	for o := Outcome(0); o < NumOutcomes; o++ {
		if d[o] == 0 && o >= Unknown {
			continue // Unknown/Cancelled only render when present
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%.2f%%", o, 100*float64(d[o])/float64(t))
	}
	return s
}

// Target describes one (workload, core configuration) combination. Init,
// when non-nil, loads the workload's input data into fresh cores; it must
// be deterministic.
type Target struct {
	Cfg  cpu.Config
	Prog *isa.Program
	Init func(*cpu.Core)
}

// NewCore builds a fresh initialised core for the target.
func (t *Target) NewCore() *cpu.Core {
	c := cpu.New(t.Cfg, t.Prog)
	if t.Init != nil {
		t.Init(c)
	}
	return c
}

// Golden is the reference run: the architectural outcome plus (optionally)
// the lifetime tracer of the ACE-like analysis.
type Golden struct {
	Result cpu.RunResult
	Tracer *lifetime.Tracer
}

// Runner executes injection campaigns for a target. The zero value is not
// usable (it would run a zero-cycle golden run and time out every fault);
// start from NewRunner, which fills every default below. Negative knob
// values are configuration errors — call Validate before running a Runner
// built from untrusted input (e.g. a service request) instead of relying
// on them behaving like 0.
type Runner struct {
	Target
	// TimeoutFactor bounds each faulty run at TimeoutFactor x golden
	// cycles, past which the fault classifies as Timeout. NewRunner sets
	// the paper's 3; 0 is invalid (every run would time out immediately).
	TimeoutFactor uint64
	// Workers is the injection worker count of RunAll and the
	// checkpointed/forked schedulers. NewRunner leaves it 0, which means
	// runtime.GOMAXPROCS(0) (all host cores) at run time. Negative values
	// are invalid.
	Workers int
	// GoldenBudget bounds the fault-free reference run; a golden run
	// that exceeds it is an error, not a campaign result. NewRunner sets
	// DefaultGoldenBudget; 0 is invalid.
	GoldenBudget uint64
	// MaxForks caps the in-flight machine clones of the fork-on-fault
	// scheduler (its memory bound). 0 means 2 x the *effective* worker
	// count (i.e. 2 x GOMAXPROCS when Workers is also 0). Negative
	// values are invalid.
	MaxForks int
	// OnOutcome, when non-nil, is called once per classified fault with
	// the fault's index in the campaign's input list. All schedulers call
	// it from worker goroutines, concurrently and in completion (not
	// input) order; it must be safe for concurrent use and should return
	// quickly — the campaign service uses it to stream per-fault progress.
	OnOutcome func(idx int, f fault.Fault, o Outcome)
	// Snapshots, when non-nil, serves checkpoint ladders across campaigns
	// (the daemon's in-memory snapshot cache): on a hit the checkpointed
	// and forked schedulers skip the ladder rebuild entirely. Nil means
	// every campaign builds its own ladder.
	Snapshots SnapshotSource
	// Pool recycles retired machine-clone shells across faults (and across
	// campaigns run on this Runner). Nil means the first scheduler call
	// installs one; share a pool explicitly to recycle shells across
	// Runners of the same configuration. Like the other knobs, it must not
	// be swapped while a campaign is running.
	Pool *cpu.ClonePool

	// goldenRuns counts the fault-free reference runs this Runner has
	// simulated; batch pipelines assert exactly one per shared golden.
	goldenRuns atomic.Int64
}

// GoldenRuns reports how many fault-free reference runs this Runner has
// simulated (RunGolden calls). Campaigns sharing one Runner over a single
// golden run — the batch pipeline — observe 1 here no matter how many
// structures they inject; an artifact-cache hit leaves it at 0.
func (r *Runner) GoldenRuns() int64 { return r.goldenRuns.Load() }

// DefaultGoldenBudget is NewRunner's bound on the fault-free reference
// run: generous enough for every registered workload at every Table 1
// configuration, small enough to catch a diverging program.
const DefaultGoldenBudget = 500_000_000

// NewRunner returns a Runner with the paper's 3x timeout factor,
// DefaultGoldenBudget, and Workers 0 (= all host cores at run time).
func NewRunner(t Target) *Runner {
	return &Runner{Target: t, TimeoutFactor: 3, GoldenBudget: DefaultGoldenBudget}
}

// Validate reports knob values the run methods would otherwise misread:
// negative counts (which the "0 means default" convention would silently
// treat as defaults) and zero budgets (which would classify every fault
// Timeout or fail every golden run).
func (r *Runner) Validate() error {
	switch {
	case r.Workers < 0:
		return fmt.Errorf("campaign: Workers is %d; want >= 0 (0 = all host cores)", r.Workers)
	case r.MaxForks < 0:
		return fmt.Errorf("campaign: MaxForks is %d; want >= 0 (0 = 2x workers)", r.MaxForks)
	case r.TimeoutFactor == 0:
		return fmt.Errorf("campaign: TimeoutFactor is 0; every faulty run would classify Timeout (NewRunner sets 3)")
	case r.GoldenBudget == 0:
		return fmt.Errorf("campaign: GoldenBudget is 0; the golden run cannot make progress (NewRunner sets %d)", uint64(DefaultGoldenBudget))
	}
	return nil
}

// emit reports one classified fault to the OnOutcome hook, if any.
func (r *Runner) emit(idx int, f fault.Fault, o Outcome) {
	if r.OnOutcome != nil {
		r.OnOutcome(idx, f, o)
	}
}

// clonePool returns the Runner's shell pool, installing one on first use.
// Schedulers call it once per campaign from the submitting goroutine, so
// lazy installation is race-free under the Runner's "one campaign at a
// time" contract.
func (r *Runner) clonePool() *cpu.ClonePool {
	if r.Pool == nil {
		r.Pool = cpu.NewClonePool(0)
	}
	return r.Pool
}

// runMetrics accumulates the injection-phase performance counters all
// schedulers share; workers update it concurrently.
type runMetrics struct {
	clones    atomic.Int64  // machine snapshots taken
	cloneNS   atomic.Int64  // wall time spent taking them
	simCycles atomic.Uint64 // machine cycles actually simulated
}

// clone takes one metered snapshot of src through the pool. A nil
// receiver clones unmetered, so pooled paths without metrics stay safe.
func (m *runMetrics) clone(pool *cpu.ClonePool, src *cpu.Core) *cpu.Core {
	if m == nil {
		return pool.Clone(src)
	}
	t0 := time.Now()
	c := pool.Clone(src)
	m.cloneNS.Add(int64(time.Since(t0)))
	m.clones.Add(1)
	return c
}

// fill copies the counters into a finished Result.
func (m *runMetrics) fill(res *Result) {
	res.Clones = m.clones.Load()
	res.CloneTime = time.Duration(m.cloneNS.Load())
	res.SimCycles = m.simCycles.Load()
}

// RunGolden performs the fault-free reference run, tracking lifetimes of
// the given structures (none for plain baseline campaigns).
func (r *Runner) RunGolden(track ...lifetime.StructureID) (*Golden, error) {
	r.goldenRuns.Add(1)
	c := r.NewCore()
	var tr *lifetime.Tracer
	if len(track) > 0 {
		tr = lifetime.NewTracer(track...)
		c.AttachTracer(tr)
	}
	res := c.Run(r.GoldenBudget)
	if res.Halt != cpu.HaltOK {
		return nil, fmt.Errorf("campaign: golden run of %q ended with %v after %d cycles", r.Prog.Name, res.Halt, res.Cycles)
	}
	return &Golden{Result: res, Tracer: tr}, nil
}

// RunFault re-executes the program with f injected and classifies the
// outcome against the golden run. Simulator panics are converted to Crash,
// internal assertion failures to Assert.
func (r *Runner) RunFault(f fault.Fault, golden *cpu.RunResult) (out Outcome) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*cpu.AssertError); ok {
				out = Assert
			} else {
				out = Crash // simulator crash
			}
		}
	}()
	c := r.NewCore()
	for c.Cycle()+1 < f.Cycle && c.Halted() == cpu.Running {
		c.Step()
	}
	applyFault(c, f)
	limit := r.TimeoutFactor * golden.Cycles
	res := c.Run(limit)
	return Classify(res, golden)
}

// applyFault flips every bit of the (possibly multi-bit) fault, clamped to
// the entry width.
func applyFault(c *cpu.Core, f fault.Fault) {
	entryBits := c.StructureEntryBits(f.Structure)
	for i := 0; i < f.Bits(); i++ {
		bit := int(f.Bit) + i
		if bit >= entryBits {
			break
		}
		c.FlipBit(f.Structure, int(f.Entry), bit)
	}
}

// Classify maps a completed faulty run to its fault-effect class.
func Classify(res cpu.RunResult, golden *cpu.RunResult) Outcome {
	switch res.Halt {
	case cpu.HaltOK:
		if !equalU64(res.Output, golden.Output) {
			return SDC
		}
		if !equalU32(res.ExcLog, golden.ExcLog) {
			return DUE
		}
		return Masked
	case cpu.CycleLimit:
		return Timeout
	default:
		return Crash
	}
}

// Result aggregates a campaign.
type Result struct {
	Outcomes []Outcome
	Dist     Dist
	Wall     time.Duration // parallel wall-clock of the whole campaign
	Serial   time.Duration // summed per-injection run time (single-machine equivalent)
	// Injected counts the faults actually injected and classified; Dist
	// aggregates exactly those.
	Injected int
	// Cancelled counts faults the campaign never injected because its
	// context was cancelled first. Their Outcomes entries carry the
	// Cancelled sentinel and they are excluded from Dist, so
	// Dist.Total() + Cancelled == len(Outcomes) always holds.
	Cancelled int

	// Clones counts the machine snapshots the scheduler took and
	// CloneTime the wall-clock spent taking them — the per-fault setup
	// cost the copy-on-write state layers attack.
	Clones    int64
	CloneTime time.Duration
	// SimCycles is the total number of machine cycles actually simulated:
	// shared pre-fault work (ladder builds, the forked sweep) plus every
	// faulty continuation. Divided by Wall it yields the campaign's
	// effective simulation throughput.
	SimCycles uint64
	// SnapshotHit reports that the checkpoint ladder was served by a
	// SnapshotSource instead of rebuilt (always false for Replay, which
	// uses no ladder).
	SnapshotHit bool
}

// CyclesPerSec is the campaign's effective simulation throughput:
// simulated cycles per wall-clock second across all workers.
func (res *Result) CyclesPerSec() float64 {
	if res.Wall <= 0 {
		return 0
	}
	return float64(res.SimCycles) / res.Wall.Seconds()
}

// newResult sizes a Result for n faults with every outcome pre-marked
// Cancelled: a scheduler only overwrites the entries it classifies, so a
// cancelled campaign's skipped faults are identifiable without extra
// bookkeeping.
func newResult(n int) *Result {
	res := &Result{Outcomes: make([]Outcome, n)}
	for i := range res.Outcomes {
		res.Outcomes[i] = Cancelled
	}
	return res
}

// NewResultFrom assembles a Result from outcomes classified elsewhere —
// the distributed path's merge point, where per-shard outcome streams
// (and checkpointed outcomes from a resumed campaign) recombine into the
// same aggregate a local Runner would have produced. Entries still
// carrying the Cancelled sentinel count as never-injected, exactly as in
// a locally cancelled campaign.
func NewResultFrom(outcomes []Outcome) *Result {
	res := &Result{Outcomes: outcomes}
	for _, o := range outcomes {
		if o == Cancelled {
			res.Cancelled++
			continue
		}
		res.Dist.Add(o)
		res.Injected++
	}
	return res
}

// finalize aggregates the classified outcomes into Dist, counts the
// cancelled remainder, and propagates ctx.Err() when the campaign was cut
// short (a fully classified campaign returns nil even if ctx was cancelled
// just after the last fault).
func (res *Result) finalize(ctx context.Context) error {
	res.Dist = Dist{}
	res.Injected, res.Cancelled = 0, 0
	for _, o := range res.Outcomes {
		if o == Cancelled {
			res.Cancelled++
			continue
		}
		res.Dist.Add(o)
		res.Injected++
	}
	if res.Cancelled > 0 {
		return ctx.Err()
	}
	return nil
}

// RunAll injects every fault in faults (in parallel) and aggregates the
// classification. The outcome order matches the fault order. Workers
// observe ctx between injections: on cancellation the partial Result is
// returned together with ctx.Err(), in-flight faults finish classification
// and the rest are marked Cancelled.
//
// Replay remains the assumption-free baseline: every faulty run simulates
// to its natural end, with no convergence early exit. Only the per-fault
// setup is accelerated — workers clone one frozen reset snapshot through
// the shell pool instead of rebuilding the core, and a clone of the reset
// state is bit-identical to a fresh core, so outcomes are unchanged.
func (r *Runner) RunAll(ctx context.Context, faults []fault.Fault, golden *cpu.RunResult) (*Result, error) {
	res := newResult(len(faults))
	var serialNS atomic.Int64
	var m runMetrics
	start := time.Now()
	if len(faults) > 0 && ctx.Err() == nil {
		pool := r.clonePool()
		reset := r.NewCore().Clone() // frozen: concurrent workers clone it safely
		parallelFor(ctx, r.Workers, len(faults), func(i int) {
			t0 := time.Now()
			res.Outcomes[i] = r.runReplayFault(pool, reset, faults[i], golden, &m)
			serialNS.Add(int64(time.Since(t0)))
			r.emit(i, faults[i], res.Outcomes[i])
		})
	}
	res.Wall = time.Since(start)
	res.Serial = time.Duration(serialNS.Load())
	m.fill(res)
	return res, res.finalize(ctx)
}

// runReplayFault is RunFault through the clone pool: replay f from a
// frozen reset snapshot to its natural classification. The clone is
// released after classification; a released shell is scrubbed by
// copy-over on reuse, so even a panicked (Crash/Assert) run's shell is
// safe to recycle.
func (r *Runner) runReplayFault(pool *cpu.ClonePool, reset *cpu.Core, f fault.Fault, golden *cpu.RunResult, m *runMetrics) (out Outcome) {
	c := m.clone(pool, reset)
	defer func() {
		m.simCycles.Add(c.Cycle())
		pool.Release(c)
		if p := recover(); p != nil {
			if _, ok := p.(*cpu.AssertError); ok {
				out = Assert
			} else {
				out = Crash // simulator crash
			}
		}
	}()
	for c.Cycle()+1 < f.Cycle && c.Halted() == cpu.Running {
		c.Step()
	}
	applyFault(c, f)
	res := c.Run(r.TimeoutFactor * golden.Cycles)
	return Classify(res, golden)
}

// parallelFor runs fn(0..n-1) across a worker pool. Cancellation is
// observed between iterations: once ctx is done no new index is dispatched,
// so at most one in-flight fn per worker completes afterwards.
func parallelFor(ctx context.Context, workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		// Non-blocking cancellation check first: when a worker is ready
		// to receive AND ctx is done, a bare two-case select would pick
		// at random and could keep dispatching past cancellation.
		select {
		case <-done:
			break feed
		default:
		}
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
