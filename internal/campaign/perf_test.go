package campaign

import (
	"context"
	"sync"
	"testing"

	"merlin/internal/lifetime"
	"merlin/internal/sampling"
)

// TestPooledReplayMatchesRunFault: RunAll's pooled reset-snapshot path
// must classify every fault exactly as the untouched per-fault RunFault
// (fresh core, no pool, no early exit) does — the seed behaviour.
func TestPooledReplayMatchesRunFault(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := strategyFaultList(c, lifetime.StructRF, g.Result.Cycles, 30, 5, nil)
	res := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))
	for i, f := range faults {
		if want := r.RunFault(f, &g.Result); res.Outcomes[i] != want {
			t.Errorf("fault %v: pooled RunAll %v, RunFault %v", f, res.Outcomes[i], want)
		}
	}
	if res.Clones != int64(len(faults)) {
		t.Errorf("Clones = %d, want one per fault (%d)", res.Clones, len(faults))
	}
	if res.SimCycles == 0 {
		t.Error("SimCycles not recorded")
	}
	if res.CyclesPerSec() <= 0 {
		t.Error("CyclesPerSec not derivable")
	}
}

// TestRunFaultFromEarlyExitMatches: RunFaultFrom's new masked-equivalence
// ladder exit must classify exactly as a full from-reset replay.
func TestRunFaultFromEarlyExitMatches(t *testing.T) {
	r := NewRunner(target(t, "qsort"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	set := r.BuildCheckpoints(6, g.Result.Cycles)
	c := r.NewCore()
	faults := strategyFaultList(c, lifetime.StructL1D, g.Result.Cycles, 30, 9, set.cycles[1:])
	for _, f := range faults {
		if got, want := r.RunFaultFrom(set, f, &g.Result), r.RunFault(f, &g.Result); got != want {
			t.Errorf("fault %v: checkpointed-with-exit %v, replay %v", f, got, want)
		}
	}
}

// TestCheckpointedCancelledWallClock: a campaign cancelled before it
// starts must still stamp Wall, so partial results always carry a
// wall-clock (regression: the dead-on-arrival path returned Wall == 0).
func TestCheckpointedCancelledWallClock(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	faults := sampling.Generate(lifetime.StructRF, 256, 64, g.Result.Cycles, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.RunAllCheckpointed(ctx, faults, &g.Result, 4)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if res.Wall <= 0 {
		t.Errorf("dead-on-arrival cancellation left Wall = %v, want > 0", res.Wall)
	}
	if res.Cancelled != len(faults) {
		t.Errorf("Cancelled = %d, want %d", res.Cancelled, len(faults))
	}
}

// mapSnapshotSource is a test double for the daemon's snapshot cache.
type mapSnapshotSource struct {
	mu     sync.Mutex
	sets   map[SnapshotKey]*CheckpointSet
	builds int
}

func (s *mapSnapshotSource) GetOrBuild(key SnapshotKey, build func() *CheckpointSet) (*CheckpointSet, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if set, ok := s.sets[key]; ok {
		return set, true
	}
	if s.sets == nil {
		s.sets = make(map[SnapshotKey]*CheckpointSet)
	}
	set := build()
	s.sets[key] = set
	s.builds++
	return set, false
}

// TestSnapshotSourceSharing: with a SnapshotSource attached, repeat
// campaigns reuse one ladder (SnapshotHit set, one build), outcomes stay
// bit-identical, and both checkpointed and forked schedulers share the
// same cached sets per their distinct keys.
func TestSnapshotSourceSharing(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := strategyFaultList(c, lifetime.StructRF, g.Result.Cycles, 25, 11, nil)
	want := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))

	src := &mapSnapshotSource{}
	r.Snapshots = src
	for round := 0; round < 2; round++ {
		ck := mustRun(t)(r.RunAllCheckpointed(context.Background(), faults, &g.Result, 4))
		fk := mustRun(t)(r.RunAllForked(context.Background(), faults, &g.Result))
		if hit := round > 0; ck.SnapshotHit != hit || fk.SnapshotHit != hit {
			t.Errorf("round %d: SnapshotHit ckpt=%v forked=%v, want %v", round, ck.SnapshotHit, fk.SnapshotHit, hit)
		}
		for i := range faults {
			if ck.Outcomes[i] != want.Outcomes[i] || fk.Outcomes[i] != want.Outcomes[i] {
				t.Fatalf("round %d fault %d: outcomes diverge with shared snapshots", round, i)
			}
		}
	}
	if src.builds != 2 { // one ladder per (k, strategy) key: k=4 and ForkSyncPoints
		t.Errorf("ladder built %d times, want 2 (one per key)", src.builds)
	}
	if want.SnapshotHit {
		t.Error("replay strategy must never report a snapshot hit")
	}
}

// TestConcurrentCampaignsSharedSnapshots: concurrent campaigns over one
// Runner configuration and one shared source must agree with the serial
// outcomes; run under -race this exercises concurrent cloning of shared
// frozen ladders end-to-end.
func TestConcurrentCampaignsSharedSnapshots(t *testing.T) {
	src := &mapSnapshotSource{}
	base := NewRunner(target(t, "sha"))
	g, err := base.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := base.NewCore()
	faults := strategyFaultList(c, lifetime.StructRF, g.Result.Cycles, 20, 13, nil)
	want := mustRun(t)(base.RunAll(context.Background(), faults, &g.Result))

	var wg sync.WaitGroup
	outcomes := make([]*Result, 4)
	for w := range outcomes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRunner(target(t, "sha"))
			r.Snapshots = src
			r.Workers = 2
			res, err := r.RunAllForked(context.Background(), faults, &g.Result)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes[i] = res
		}(w)
	}
	wg.Wait()
	for i, res := range outcomes {
		if res == nil {
			continue
		}
		for j := range faults {
			if res.Outcomes[j] != want.Outcomes[j] {
				t.Fatalf("campaign %d fault %d: %v, want %v", i, j, res.Outcomes[j], want.Outcomes[j])
			}
		}
	}
}
