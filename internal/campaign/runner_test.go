package campaign

import (
	"context"
	"strings"
	"sync"
	"testing"

	"merlin/internal/fault"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
)

// TestValidate: negative counts and zero budgets are reported as errors
// instead of being silently read as "use the default".
func TestValidate(t *testing.T) {
	base := func() *Runner { return NewRunner(target(t, "sha")) }

	if err := base().Validate(); err != nil {
		t.Fatalf("NewRunner defaults invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Runner)
		want   string
	}{
		{"negative workers", func(r *Runner) { r.Workers = -1 }, "Workers"},
		{"negative maxforks", func(r *Runner) { r.MaxForks = -4 }, "MaxForks"},
		{"zero timeout factor", func(r *Runner) { r.TimeoutFactor = 0 }, "TimeoutFactor"},
		{"zero golden budget", func(r *Runner) { r.GoldenBudget = 0 }, "GoldenBudget"},
	}
	for _, tc := range cases {
		r := base()
		tc.mutate(r)
		err := r.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error naming %s", tc.name, err, tc.want)
		}
	}
}

// TestOnOutcomeHook: every scheduler reports each fault exactly once, with
// the outcome it also records in the result, under concurrency.
func TestOnOutcomeHook(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	r.Workers = 2
	golden, err := r.RunGolden(lifetime.StructRF)
	if err != nil {
		t.Fatal(err)
	}
	core := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		core.StructureEntries(lifetime.StructRF),
		core.StructureEntryBits(lifetime.StructRF),
		golden.Result.Cycles, 40, 7)

	for _, strat := range []Strategy{Replay, Checkpointed, Forked} {
		var mu sync.Mutex
		seen := make(map[int]Outcome)
		var hookFaults []fault.Fault
		r.OnOutcome = func(idx int, f fault.Fault, o Outcome) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[idx]; dup {
				t.Errorf("%v: fault %d reported twice", strat, idx)
			}
			seen[idx] = o
			hookFaults = append(hookFaults, f)
		}
		res := mustRun(t)(r.RunAllWith(context.Background(), strat, faults, &golden.Result, 4))
		r.OnOutcome = nil

		if len(seen) != len(faults) {
			t.Fatalf("%v: hook saw %d faults, want %d", strat, len(seen), len(faults))
		}
		for idx, o := range seen {
			if res.Outcomes[idx] != o {
				t.Errorf("%v: fault %d hook outcome %v != result %v", strat, idx, o, res.Outcomes[idx])
			}
		}
		for i, f := range hookFaults {
			if f.Structure != lifetime.StructRF {
				t.Fatalf("%v: hook fault %d has wrong structure %v", strat, i, f.Structure)
			}
		}
	}
}
