package campaign

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"merlin/internal/cpu"
	"merlin/internal/fault"
)

// Strategy selects how injection runs reproduce the pre-fault execution
// prefix. All strategies are bit-identical in outcome; they differ only in
// how much of the golden run is re-simulated per fault.
type Strategy uint8

const (
	// Replay re-executes every injection run from reset: O(F x avg_cycle)
	// pre-fault simulation. The comprehensive, assumption-free baseline.
	Replay Strategy = iota
	// Checkpointed replays each injection from the nearest of k frozen
	// mid-run snapshots (Chatzidimitriou & Gizopoulos, ISPASS 2016):
	// O(F x avg_cycle/(k+1)) pre-fault simulation.
	Checkpointed
	// Forked drives one sweep core through the golden run exactly once
	// and forks a clone per fault at its injection cycle: O(golden_cycles
	// + F x clone) pre-fault work, the fastest of the three.
	Forked
	numStrategies
)

var strategyNames = [numStrategies]string{"replay", "checkpointed", "forked"}

// String returns the flag-style lowercase name.
func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// ParseStrategy maps a flag value to a Strategy, case-insensitively.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if strings.EqualFold(name, n) {
			return Strategy(s), nil
		}
	}
	return Replay, fmt.Errorf("unknown injection strategy %q (want replay, checkpointed, or forked)", name)
}

// MarshalText renders the flag-style name, so JSON carrying a Strategy
// reads "forked" instead of a bare int.
func (s Strategy) MarshalText() ([]byte, error) {
	if int(s) >= len(strategyNames) {
		return nil, fmt.Errorf("cannot marshal unknown strategy %d", uint8(s))
	}
	return []byte(strategyNames[s]), nil
}

// UnmarshalText parses a strategy name case-insensitively, round-tripping
// MarshalText.
func (s *Strategy) UnmarshalText(text []byte) error {
	v, err := ParseStrategy(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// DefaultCheckpoints is the snapshot count RunAllWith uses when the
// Checkpointed strategy is selected without an explicit k.
const DefaultCheckpoints = 8

// RunAllWith dispatches a campaign to the selected strategy. checkpoints
// is only consulted by Checkpointed (<=0 means DefaultCheckpoints). Like
// the strategies themselves, it observes ctx between injections and
// returns the partial Result together with ctx.Err() on cancellation.
func (r *Runner) RunAllWith(ctx context.Context, s Strategy, faults []fault.Fault, golden *cpu.RunResult, checkpoints int) (*Result, error) {
	switch s {
	case Checkpointed:
		if checkpoints <= 0 {
			checkpoints = DefaultCheckpoints
		}
		return r.RunAllCheckpointed(ctx, faults, golden, checkpoints)
	case Forked:
		return r.RunAllForked(ctx, faults, golden)
	default:
		return r.RunAll(ctx, faults, golden)
	}
}

// ForkSyncPoints is the number of golden snapshots the fork-on-fault
// scheduler freezes along the run. They serve double duty: the sweep
// re-roots its copy-on-write lineage at each one, and faulty continuations
// compare their state against them to exit early once a fault provably
// converged back to the golden run.
const ForkSyncPoints = 24

// forkJob hands one fault plus its pre-fault machine snapshot to a worker.
type forkJob struct {
	idx  int
	core *cpu.Core
}

// RunAllForked is the fork-on-fault scheduler. A single sweep core steps
// forward through the golden run exactly once; at each fault's injection
// cycle (visited in ascending order) it clones the machine state and hands
// the clone to a bounded worker pool that applies the fault and runs the
// faulty continuation to classification. The shared pre-fault prefix is
// thus simulated once for the whole campaign instead of once per fault,
// reducing total pre-fault work from O(F x avg_cycle/(k+1)) under
// checkpointing to O(golden_cycles + F x clone).
//
// Faulty continuations additionally stop at the first golden sync
// snapshot they are masked-equivalent to (see cpu.MaskedEquivalent):
// state-identical up to provably dead storage, which guarantees the rest
// of the run reproduces the golden outcome. Because the overwhelming
// share of faults is masked, most continuations end at the next sync
// point instead of simulating to program completion. Faults that never
// re-converge run to their natural classification, so outcomes stay
// bit-identical to RunAll's, in the input fault order.
//
// The number of live clones is capped at MaxForks (default 2x workers) so
// campaigns whose faults cluster late in the run cannot hold thousands of
// machine snapshots in memory: the sweep blocks until a worker retires a
// clone.
//
// The sweep observes ctx between faults: on cancellation it stops forking,
// in-flight clones finish classification, the remaining faults are marked
// Cancelled, and the partial Result is returned together with ctx.Err().
func (r *Runner) RunAllForked(ctx context.Context, faults []fault.Fault, golden *cpu.RunResult) (*Result, error) {
	res := newResult(len(faults))
	start := time.Now()
	// The sync ladder build replays a whole golden run and is not
	// interruptible; skip it when the campaign is already dead on arrival.
	if len(faults) == 0 || ctx.Err() != nil {
		res.Wall = time.Since(start)
		return res, res.finalize(ctx)
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	maxForks := r.MaxForks
	if maxForks <= 0 {
		maxForks = 2 * workers
	}

	// The golden sync ladder (a CheckpointSet: reset state + snapshots at
	// evenly spaced cycles), served from the shared SnapshotSource when
	// one is attached and built once per campaign otherwise. Like the
	// sweep, a build is shared pre-fault work counted once in Wall and
	// Serial; a snapshot hit skips it entirely.
	var serialNS atomic.Int64
	var m runMetrics
	pool := r.clonePool()
	ladder, hit := r.ladder(ForkSyncPoints, golden.Cycles)
	if !hit {
		m.simCycles.Add(ladder.LastCycle())
	}
	res.SnapshotHit = hit
	serialNS.Add(int64(time.Since(start)))
	live := make(chan struct{}, maxForks) // in-flight clone budget
	jobs := make(chan forkJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				preFault := j.core.Cycle()
				res.Outcomes[j.idx] = r.runForkedClone(j.core, faults[j.idx], golden, ladder)
				m.simCycles.Add(j.core.Cycle() - preFault)
				pool.Release(j.core)
				serialNS.Add(int64(time.Since(t0)))
				r.emit(j.idx, faults[j.idx], res.Outcomes[j.idx])
				<-live
			}
		}()
	}

	// The sweep: advance the golden run once, forking at each fault
	// cycle. Crossing a ladder snapshot, the sweep re-roots itself on a
	// clone of it — bit-identical state by determinism — so the
	// copy-on-write page pool the forks share with the ladder stays
	// shallow and state comparisons skip everything the segment never
	// wrote.
	sweep := m.clone(pool, ladder.cores[0])
	next := 1
	t0 := time.Now()
	sweepStart := sweep.Cycle()
	done := ctx.Done()
sweep:
	for _, idx := range fault.SortedIndices(faults) {
		select {
		case <-done:
			break sweep
		default:
		}
		fc := faults[idx].Cycle
		root := -1
		for next < len(ladder.cycles) && ladder.cycles[next] < fc {
			root = next
			next++
		}
		if root >= 0 {
			m.simCycles.Add(sweep.Cycle() - sweepStart)
			pool.Release(sweep)
			sweep = m.clone(pool, ladder.cores[root])
			sweepStart = sweep.Cycle()
		}
		for sweep.Cycle()+1 < fc && sweep.Halted() == cpu.Running {
			sweep.Step()
		}
		// Acquiring a clone slot and handing the job off can both block
		// on busy workers; observe cancellation in each so a cancelled
		// sweep never waits for a whole classification to retire first.
		// (Breaking with the live token held is harmless: the sweep ends
		// and the channel is garbage once the workers drain.)
		select {
		case live <- struct{}{}:
		case <-done:
			break sweep
		}
		select {
		case jobs <- forkJob{idx: idx, core: m.clone(pool, sweep)}:
		case <-done:
			break sweep
		}
	}
	close(jobs)
	// The sweep is shared pre-fault work; count it once in the
	// serial-equivalent total.
	m.simCycles.Add(sweep.Cycle() - sweepStart)
	serialNS.Add(int64(time.Since(t0)))
	wg.Wait()
	pool.Release(sweep)

	res.Wall = time.Since(start)
	res.Serial = time.Duration(serialNS.Load())
	m.fill(res)
	return res, res.finalize(ctx)
}

// runForkedClone finishes one faulty continuation: the clone already sits
// at the fault's pre-injection cycle, so only apply-and-run remains — the
// shared classifyAgainst does the rest, including the masked-equivalence
// early exit at the golden sync snapshots. Simulator panics classify
// exactly as in RunFault.
func (r *Runner) runForkedClone(c *cpu.Core, f fault.Fault, golden *cpu.RunResult, ladder *CheckpointSet) (out Outcome) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*cpu.AssertError); ok {
				out = Assert
			} else {
				out = Crash
			}
		}
	}()
	applyFault(c, f)
	return r.classifyAgainst(c, golden, ladder)
}
