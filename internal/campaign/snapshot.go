package campaign

import "merlin/internal/cpu"

// SnapshotKey identifies one checkpoint ladder: everything its machine
// snapshots depend on. Two campaigns agreeing on the key — regardless of
// fault list, seed, workers, or grouping knobs — can share one immutable
// CheckpointSet, because BuildCheckpoints is deterministic in (workload
// program + Init, core configuration, snapshot count, golden length).
type SnapshotKey struct {
	// Workload names the target program (Target.Prog.Name); the
	// registered workload's Init is deterministic per name.
	Workload string
	// CPU is the full core configuration.
	CPU cpu.Config
	// K is the snapshot count requested from BuildCheckpoints.
	K int
	// GoldenCycles is the fault-free run length the schedule spans.
	GoldenCycles uint64
}

// SnapshotSource serves prebuilt checkpoint ladders across campaigns. A
// Runner with a non-nil Snapshots field asks it before building a ladder;
// hit reports whether the set was served without a rebuild (the daemon's
// snapshot cache wires its LRU here and exports the hit rate on /statsz).
//
// Implementations must return only immutable sets: every core in a served
// CheckpointSet is a frozen snapshot that concurrent campaigns clone but
// never step, which is exactly what BuildCheckpoints produces.
type SnapshotSource interface {
	GetOrBuild(key SnapshotKey, build func() *CheckpointSet) (set *CheckpointSet, hit bool)
}

// snapshotKey builds this runner's cache key for a k-snapshot ladder.
func (r *Runner) snapshotKey(k int, goldenCycles uint64) SnapshotKey {
	return SnapshotKey{Workload: r.Prog.Name, CPU: r.Cfg, K: k, GoldenCycles: goldenCycles}
}

// ladder returns the k-snapshot checkpoint set for a goldenCycles-long
// run, served from r.Snapshots when one is attached (hit reports a served
// set) and built fresh otherwise.
func (r *Runner) ladder(k int, goldenCycles uint64) (set *CheckpointSet, hit bool) {
	if r.Snapshots == nil {
		return r.BuildCheckpoints(k, goldenCycles), false
	}
	return r.Snapshots.GetOrBuild(r.snapshotKey(k, goldenCycles), func() *CheckpointSet {
		return r.BuildCheckpoints(k, goldenCycles)
	})
}

// MemBytes is the set's resident-memory bound: the sum of its snapshots'
// footprints, each counted as if unshared. Snapshots in one set share one
// copy-on-write lineage, so this over-counts — byte-budgeted caches evict
// early rather than late.
func (s *CheckpointSet) MemBytes() int64 {
	var n int64
	for _, c := range s.cores {
		n += c.Footprint()
	}
	return n
}

// LastCycle returns the cycle of the latest snapshot (0 for a reset-only
// set): the simulation work one ladder build performs.
func (s *CheckpointSet) LastCycle() uint64 {
	return s.cycles[len(s.cycles)-1]
}
