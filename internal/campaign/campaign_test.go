package campaign

import (
	"context"
	"testing"

	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
	"merlin/internal/workloads"
)

func target(t *testing.T, name string) Target {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return Target{Cfg: cpu.DefaultConfig(), Prog: w.Program()}
}

// mustRun unwraps a scheduler result in tests that never cancel: any
// cancellation error there is a test bug. Curried so the scheduler's
// (Result, error) pair can feed it directly: mustRun(t)(r.RunAll(...)).
func mustRun(t *testing.T) func(*Result, error) *Result {
	return func(res *Result, err error) *Result {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
}

func TestGoldenRun(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	if g.Result.Halt != cpu.HaltOK || len(g.Result.Output) == 0 {
		t.Fatalf("golden: %+v", g.Result)
	}
	if g.Tracer != nil {
		t.Error("tracer must be nil when no structures are tracked")
	}
	g2, err := r.RunGolden(lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Tracer == nil || g2.Tracer.Cycles == 0 {
		t.Fatal("tracked golden run missing tracer state")
	}
	for _, s := range []lifetime.StructureID{lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D} {
		if len(g2.Tracer.Log(s).Events) == 0 {
			t.Errorf("no %v events", s)
		}
	}
	if len(g2.Tracer.Branches) == 0 {
		t.Error("no committed branches recorded")
	}
}

func TestInjectionCampaignSmall(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		c.StructureEntries(lifetime.StructRF), 64, g.Result.Cycles, 150, 7)
	res := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))
	if res.Dist.Total() != 150 {
		t.Fatalf("classified %d of 150", res.Dist.Total())
	}
	// Sanity: most RF faults are masked (the paper measures >90% masked
	// for the RF), and at least a few faults do something.
	if res.Dist.Share(Masked) < 0.5 {
		t.Errorf("masked share %.2f implausibly low: %v", res.Dist.Share(Masked), res.Dist)
	}
	if res.Dist[Masked] == res.Dist.Total() {
		t.Log("warning: every fault masked (legal but uninformative at this sample size)")
	}
	if res.Serial <= 0 || res.Wall <= 0 {
		t.Error("timing not recorded")
	}
	t.Logf("RF dist: %v", res.Dist)
}

func TestInjectionDeterminism(t *testing.T) {
	r := NewRunner(target(t, "qsort"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructL1D,
		c.StructureEntries(lifetime.StructL1D), c.StructureEntryBits(lifetime.StructL1D),
		g.Result.Cycles, 60, 3)
	a := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))
	b := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("fault %d (%v): %v then %v", i, faults[i], a.Outcomes[i], b.Outcomes[i])
		}
	}
}

func TestFaultBeforeGoldenDivergence(t *testing.T) {
	// A fault at cycle 1 into a never-used high register must be masked.
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	f := fault.Fault{Structure: lifetime.StructRF, Entry: 255, Bit: 63, Cycle: 1}
	if got := r.RunFault(f, &g.Result); got != Masked {
		t.Errorf("unused-register fault = %v, want Masked", got)
	}
}

func TestOutcomeStringAndDist(t *testing.T) {
	var d Dist
	d.AddN(Masked, 90)
	d.AddN(SDC, 5)
	d.AddN(Crash, 5)
	if d.Total() != 100 {
		t.Fatal("total")
	}
	if d.AVF() != 0.10 {
		t.Errorf("AVF = %v", d.AVF())
	}
	if fit := d.FIT(64*64, 0.01); fit != 0.10*0.01*64*64 {
		t.Errorf("FIT = %v", fit)
	}
	if Masked.String() != "Masked" || Unknown.String() != "Unknown" {
		t.Error("outcome names")
	}
	if d.String() == "" || d.Share(SDC) != 0.05 {
		t.Error("dist formatting")
	}
}

func TestClassifyTable(t *testing.T) {
	golden := cpu.RunResult{Halt: cpu.HaltOK, Output: []uint64{1, 2}, ExcLog: nil}
	tests := []struct {
		res  cpu.RunResult
		want Outcome
	}{
		{cpu.RunResult{Halt: cpu.HaltOK, Output: []uint64{1, 2}}, Masked},
		{cpu.RunResult{Halt: cpu.HaltOK, Output: []uint64{1, 3}}, SDC},
		{cpu.RunResult{Halt: cpu.HaltOK, Output: []uint64{1}}, SDC},
		{cpu.RunResult{Halt: cpu.HaltOK, Output: []uint64{1, 2}, ExcLog: []uint32{9}}, DUE},
		{cpu.RunResult{Halt: cpu.HaltOK, Output: []uint64{1, 3}, ExcLog: []uint32{9}}, SDC},
		{cpu.RunResult{Halt: cpu.CycleLimit}, Timeout},
		{cpu.RunResult{Halt: cpu.CrashPageFault}, Crash},
		{cpu.RunResult{Halt: cpu.CrashBadFetch}, Crash},
		{cpu.RunResult{Halt: cpu.CrashDivZero}, Crash},
	}
	for _, tt := range tests {
		if got := Classify(tt.res, &golden); got != tt.want {
			t.Errorf("Classify(%v/%v) = %v, want %v", tt.res.Halt, tt.res.Output, got, tt.want)
		}
	}
}

func TestTruncatedGoldenAndFaults(t *testing.T) {
	r := NewRunner(target(t, "bzip2"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	cut := g.Result.Cycles / 2
	tg, err := r.RunGoldenTruncated(cut)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Hash == 0 {
		t.Error("state hash missing")
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		c.StructureEntries(lifetime.StructRF), 64, cut, 80, 11)
	res := mustRun(t)(r.RunAllTruncated(context.Background(), faults, tg))
	if res.Dist.Total() != 80 {
		t.Fatal("missing outcomes")
	}
	// Truncated classification has no SDC/Timeout classes.
	if res.Dist[SDC] != 0 || res.Dist[Timeout] != 0 {
		t.Errorf("truncated run produced SDC/Timeout: %v", res.Dist)
	}
	if res.Dist[Masked]+res.Dist[Unknown] == 0 {
		t.Errorf("no Masked/Unknown outcomes at all: %v", res.Dist)
	}
	t.Logf("truncated dist: %v", res.Dist)
}

func TestTruncatedFaultMaskedWhenOverwritten(t *testing.T) {
	// Identical machine states at the cut must classify as Masked even
	// though the run never finishes.
	r := NewRunner(target(t, "bzip2"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	cut := g.Result.Cycles / 2
	tg, err := r.RunGoldenTruncated(cut)
	if err != nil {
		t.Fatal(err)
	}
	// Unused high RF entry: flipped bit lives in a register that is never
	// allocated, so the hash (architecturally reachable state) matches.
	f := fault.Fault{Structure: lifetime.StructRF, Entry: 250, Bit: 1, Cycle: 5}
	if got := r.RunFaultTruncated(f, tg); got != Masked {
		t.Errorf("dead fault at cut = %v, want Masked", got)
	}
}

func TestMultiBitFaults(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	entries := c.StructureEntries(lifetime.StructRF)
	single := sampling.GenerateMultiBit(lifetime.StructRF, entries, 64, g.Result.Cycles, 300, 1, 13)
	double := make([]fault.Fault, len(single))
	copy(double, single)
	for i := range double {
		double[i].Width = 2
		if double[i].Bit == 63 {
			double[i].Bit = 62
		}
	}
	r1 := mustRun(t)(r.RunAll(context.Background(), single, &g.Result))
	r2 := mustRun(t)(r.RunAll(context.Background(), double, &g.Result))
	// Flipping a superset of bits at the same sites can only corrupt at
	// least as often; verify the aggregate ordering (the multi-bit model's
	// sanity property) with slack for classification shifts among
	// non-masked classes.
	if r2.Dist[Masked] > r1.Dist[Masked] {
		t.Errorf("double-bit masked %d > single-bit masked %d", r2.Dist[Masked], r1.Dist[Masked])
	}
	t.Logf("single: %v", r1.Dist)
	t.Logf("double: %v", r2.Dist)
}
