package campaign

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"merlin/internal/cpu"
	"merlin/internal/fault"
)

// CheckpointSet holds frozen machine snapshots at evenly spaced cycles of
// the fault-free run. Injection runs clone the latest snapshot before
// their fault cycle instead of replaying from reset — the run-acceleration
// technique of Chatzidimitriou & Gizopoulos (ISPASS 2016), which the paper
// notes is orthogonal to (and combinable with) MeRLiN.
type CheckpointSet struct {
	cycles []uint64
	cores  []*cpu.Core // frozen; accessed read-only via Clone
}

// CheckpointSchedule returns the snapshot cycle schedule BuildCheckpoints
// aims at for k snapshots over a goldenCycles-long run: the reset state at
// cycle 0 plus k evenly spaced target cycles. The golden-run artifact
// cache persists this schedule so operators can see where a campaign's
// sync points sit without rebuilding the machine snapshots (which are not
// serializable and are instead rebuilt deterministically in one pass).
func CheckpointSchedule(k int, goldenCycles uint64) []uint64 {
	s := make([]uint64, 1, k+1)
	for i := 1; i <= k; i++ {
		s = append(s, goldenCycles*uint64(i)/uint64(k+1))
	}
	return s
}

// BuildCheckpoints replays the fault-free run once, freezing k snapshots
// (plus the reset state). The returned set is immutable and safe for
// concurrent use. Every snapshot is cloned off the same replay core, so
// the whole set shares one copy-on-write page lineage: clones of one
// snapshot compare against another mostly by page pointer.
func (r *Runner) BuildCheckpoints(k int, goldenCycles uint64) *CheckpointSet {
	c := r.NewCore()
	set := &CheckpointSet{
		cycles: []uint64{0},
		cores:  []*cpu.Core{c.Clone()},
	}
	for _, target := range CheckpointSchedule(k, goldenCycles)[1:] {
		for c.Cycle() < target && c.Halted() == cpu.Running {
			c.Step()
		}
		if c.Halted() != cpu.Running {
			break
		}
		set.cycles = append(set.cycles, c.Cycle())
		set.cores = append(set.cores, c.Clone())
	}
	return set
}

// Cycles returns a copy of the snapshot schedule (cycle 0 = reset state,
// then the frozen mid-run cycles, ascending). The golden-run artifact
// cache persists it so operators can inspect where a campaign's sync
// points sit without rebuilding the snapshots.
func (s *CheckpointSet) Cycles() []uint64 {
	out := make([]uint64, len(s.cycles))
	copy(out, s.cycles)
	return out
}

// before returns the latest snapshot strictly usable for a fault injected
// at the start of cycle fc (its cycle must be <= fc-1). fc == 0 faults
// apply at the reset state, so clamp the pre-fault cycle at 0 instead of
// letting fc-1 wrap to ^uint64(0) and select a snapshot after the fault.
func (s *CheckpointSet) before(fc uint64) *cpu.Core {
	pre := uint64(0)
	if fc > 0 {
		pre = fc - 1
	}
	i := sort.Search(len(s.cycles), func(i int) bool { return s.cycles[i] > pre })
	return s.cores[i-1]
}

// RunFaultFrom injects f starting from the nearest checkpoint and
// classifies against the golden run. Results are bit-identical to
// RunFault: the snapshot is exactly the state a from-reset replay reaches.
func (r *Runner) RunFaultFrom(set *CheckpointSet, f fault.Fault, golden *cpu.RunResult) (out Outcome) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*cpu.AssertError); ok {
				out = Assert
			} else {
				out = Crash
			}
		}
	}()
	c := set.before(f.Cycle).Clone()
	for c.Cycle()+1 < f.Cycle && c.Halted() == cpu.Running {
		c.Step()
	}
	applyFault(c, f)
	res := c.Run(r.TimeoutFactor * golden.Cycles)
	return Classify(res, golden)
}

// RunAllCheckpointed is RunAll accelerated by k checkpoints. Outcomes are
// identical to RunAll's; only wall-clock differs. The snapshot build (one
// golden-run replay) is part of the campaign and counted in both Wall and
// Serial, so timings compare fairly across strategies. Workers observe ctx
// between injections; on cancellation the partial Result is returned
// together with ctx.Err().
func (r *Runner) RunAllCheckpointed(ctx context.Context, faults []fault.Fault, golden *cpu.RunResult, k int) (*Result, error) {
	res := newResult(len(faults))
	// The snapshot build replays a whole golden run and, like the golden
	// run itself, is not interruptible — skip it entirely when the
	// campaign is already dead on arrival.
	if ctx.Err() != nil {
		return res, res.finalize(ctx)
	}
	var serialNS atomic.Int64
	start := time.Now()
	set := r.BuildCheckpoints(k, golden.Cycles)
	serialNS.Add(int64(time.Since(start)))
	parallelFor(ctx, r.Workers, len(faults), func(i int) {
		t0 := time.Now()
		res.Outcomes[i] = r.RunFaultFrom(set, faults[i], golden)
		serialNS.Add(int64(time.Since(t0)))
		r.emit(i, faults[i], res.Outcomes[i])
	})
	res.Wall = time.Since(start)
	res.Serial = time.Duration(serialNS.Load())
	return res, res.finalize(ctx)
}
