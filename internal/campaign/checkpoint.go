package campaign

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"merlin/internal/cpu"
	"merlin/internal/fault"
)

// CheckpointSet holds frozen machine snapshots at evenly spaced cycles of
// the fault-free run. Injection runs clone the latest snapshot before
// their fault cycle instead of replaying from reset — the run-acceleration
// technique of Chatzidimitriou & Gizopoulos (ISPASS 2016), which the paper
// notes is orthogonal to (and combinable with) MeRLiN. The snapshots also
// serve as the convergence ladder: a faulty continuation that becomes
// masked-equivalent to the golden state at a snapshot cycle provably ends
// with the golden outcome and stops simulating there.
type CheckpointSet struct {
	cycles []uint64
	cores  []*cpu.Core // frozen; accessed read-only via Clone
}

// CheckpointSchedule returns the snapshot cycle schedule BuildCheckpoints
// aims at for k snapshots over a goldenCycles-long run: the reset state at
// cycle 0 plus k evenly spaced target cycles. The golden-run artifact
// cache persists this schedule so operators can see where a campaign's
// sync points sit without rebuilding the machine snapshots (which are not
// serializable and are instead rebuilt deterministically in one pass).
func CheckpointSchedule(k int, goldenCycles uint64) []uint64 {
	s := make([]uint64, 1, k+1)
	for i := 1; i <= k; i++ {
		s = append(s, goldenCycles*uint64(i)/uint64(k+1))
	}
	return s
}

// BuildCheckpoints replays the fault-free run once, freezing k snapshots
// (plus the reset state). The returned set is immutable and safe for
// concurrent use. Every snapshot is cloned off the same replay core, so
// the whole set shares one copy-on-write lineage across memory pages and
// cache sets: clones of one snapshot compare against another mostly by
// pointer.
func (r *Runner) BuildCheckpoints(k int, goldenCycles uint64) *CheckpointSet {
	c := r.NewCore()
	set := &CheckpointSet{
		cycles: []uint64{0},
		cores:  []*cpu.Core{c.Clone()},
	}
	for _, target := range CheckpointSchedule(k, goldenCycles)[1:] {
		for c.Cycle() < target && c.Halted() == cpu.Running {
			c.Step()
		}
		if c.Halted() != cpu.Running {
			break
		}
		set.cycles = append(set.cycles, c.Cycle())
		set.cores = append(set.cores, c.Clone())
	}
	return set
}

// Cycles returns a copy of the snapshot schedule (cycle 0 = reset state,
// then the frozen mid-run cycles, ascending). The golden-run artifact
// cache persists it so operators can inspect where a campaign's sync
// points sit without rebuilding the snapshots.
func (s *CheckpointSet) Cycles() []uint64 {
	out := make([]uint64, len(s.cycles))
	copy(out, s.cycles)
	return out
}

// before returns the latest snapshot strictly usable for a fault injected
// at the start of cycle fc (its cycle must be <= fc-1). fc == 0 faults
// apply at the reset state, so clamp the pre-fault cycle at 0 instead of
// letting fc-1 wrap to ^uint64(0) and select a snapshot after the fault.
func (s *CheckpointSet) before(fc uint64) *cpu.Core {
	pre := uint64(0)
	if fc > 0 {
		pre = fc - 1
	}
	i := sort.Search(len(s.cycles), func(i int) bool { return s.cycles[i] > pre })
	return s.cores[i-1]
}

// classifyAgainst runs faulty clone c (fault already applied) to its
// classification. At each golden ladder snapshot past the injection cycle
// the continuation pauses; if its machine state is masked-equivalent to
// the fault-free state at that cycle (identical up to provably dead
// storage, see cpu.MaskedEquivalent), the rest of the run provably
// replays the golden run and the fault is Masked. Faults that never
// re-converge run to their natural classification, so outcomes are
// bit-identical to a full replay. A nil ladder skips the early exit.
func (r *Runner) classifyAgainst(c *cpu.Core, golden *cpu.RunResult, ladder *CheckpointSet) Outcome {
	if ladder != nil {
		for i := sort.Search(len(ladder.cycles), func(i int) bool { return ladder.cycles[i] > c.Cycle() }); i < len(ladder.cycles); i++ {
			for c.Cycle() < ladder.cycles[i] && c.Halted() == cpu.Running {
				c.Step()
			}
			if c.Halted() != cpu.Running {
				break
			}
			if cpu.MaskedEquivalent(c, ladder.cores[i]) {
				return Masked
			}
		}
	}
	res := c.Run(r.TimeoutFactor * golden.Cycles)
	return Classify(res, golden)
}

// RunFaultFrom injects f starting from the nearest checkpoint and
// classifies against the golden run. Results are bit-identical to
// RunFault: the snapshot is exactly the state a from-reset replay reaches,
// and the continuation stops early only at a snapshot it is provably
// masked-equivalent to (the same convergence exit the fork-on-fault
// scheduler uses), so masked faults cost at most one inter-snapshot
// segment instead of the rest of the run.
func (r *Runner) RunFaultFrom(set *CheckpointSet, f fault.Fault, golden *cpu.RunResult) Outcome {
	return r.runFaultFrom(nil, set, f, golden, nil)
}

// runFaultFrom is RunFaultFrom with pooling and metering: with a non-nil
// pool the clone comes from (and returns to) the shell pool, and a
// non-nil runMetrics accumulates clone and cycle counters.
func (r *Runner) runFaultFrom(pool *cpu.ClonePool, set *CheckpointSet, f fault.Fault, golden *cpu.RunResult, m *runMetrics) (out Outcome) {
	base := set.before(f.Cycle)
	var c *cpu.Core
	if pool != nil {
		c = m.clone(pool, base)
	} else {
		c = base.Clone()
	}
	start := c.Cycle()
	defer func() {
		if m != nil {
			m.simCycles.Add(c.Cycle() - start)
		}
		if pool != nil {
			pool.Release(c)
		}
		if p := recover(); p != nil {
			if _, ok := p.(*cpu.AssertError); ok {
				out = Assert
			} else {
				out = Crash
			}
		}
	}()
	for c.Cycle()+1 < f.Cycle && c.Halted() == cpu.Running {
		c.Step()
	}
	applyFault(c, f)
	return r.classifyAgainst(c, golden, set)
}

// RunAllCheckpointed is RunAll accelerated by k checkpoints. Outcomes are
// identical to RunAll's; only wall-clock differs. The snapshot build (one
// golden-run replay) is part of the campaign and counted in both Wall and
// Serial — unless a shared SnapshotSource serves a prebuilt ladder
// (res.SnapshotHit), in which case the campaign skips it entirely.
// Workers observe ctx between injections; on cancellation the partial
// Result is returned together with ctx.Err().
func (r *Runner) RunAllCheckpointed(ctx context.Context, faults []fault.Fault, golden *cpu.RunResult, k int) (*Result, error) {
	res := newResult(len(faults))
	start := time.Now()
	// The snapshot build replays a whole golden run and, like the golden
	// run itself, is not interruptible — skip it entirely when the
	// campaign is already dead on arrival (but stamp the wall-clock, so
	// partial results always carry one).
	if ctx.Err() != nil {
		res.Wall = time.Since(start)
		return res, res.finalize(ctx)
	}
	var serialNS atomic.Int64
	var m runMetrics
	pool := r.clonePool()
	set, hit := r.ladder(k, golden.Cycles)
	if !hit {
		m.simCycles.Add(set.LastCycle())
	}
	res.SnapshotHit = hit
	serialNS.Add(int64(time.Since(start)))
	parallelFor(ctx, r.Workers, len(faults), func(i int) {
		t0 := time.Now()
		res.Outcomes[i] = r.runFaultFrom(pool, set, faults[i], golden, &m)
		serialNS.Add(int64(time.Since(t0)))
		r.emit(i, faults[i], res.Outcomes[i])
	})
	res.Wall = time.Since(start)
	res.Serial = time.Duration(serialNS.Load())
	m.fill(res)
	return res, res.finalize(ctx)
}
