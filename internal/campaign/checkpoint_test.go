package campaign

import (
	"context"
	"reflect"
	"testing"

	"merlin/internal/cpu"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
)

// TestCloneEquivalence: a cloned core stepped forward must behave exactly
// like the original continuing (and the original must be undisturbed by
// the cloning).
func TestCloneEquivalence(t *testing.T) {
	r := NewRunner(target(t, "qsort"))
	ref := r.NewCore()
	refRes := ref.Run(10_000_000)

	c := r.NewCore()
	for c.Cycle() < refRes.Cycles/3 {
		c.Step()
	}
	clone := c.Clone()

	origRes := c.Run(10_000_000)
	cloneRes := clone.Run(10_000_000)

	for name, got := range map[string]cpu.RunResult{"original": origRes, "clone": cloneRes} {
		if got.Halt != refRes.Halt || got.Cycles != refRes.Cycles ||
			!reflect.DeepEqual(got.Output, refRes.Output) {
			t.Errorf("%s diverged: halt=%v cycles=%d (ref %d)", name, got.Halt, got.Cycles, refRes.Cycles)
		}
	}
}

// TestCloneIsolation: mutating a clone (fault injection) must not affect
// the original.
func TestCloneIsolation(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	for c.Cycle() < 100 {
		c.Step()
	}
	clone := c.Clone()
	// Smash the clone's state thoroughly.
	for e := 0; e < 16; e++ {
		for b := 0; b < 64; b += 7 {
			clone.FlipBit(lifetime.StructRF, e, b)
		}
	}
	clone.Run(3 * g.Result.Cycles)
	// The original must still complete the golden run exactly.
	res := c.Run(10_000_000)
	if res.Halt != cpu.HaltOK || !reflect.DeepEqual(res.Output, g.Result.Output) {
		t.Fatalf("original corrupted by clone mutation: %v", res.Halt)
	}
}

// TestCheckpointedCampaignIdentical: checkpoint-accelerated injection must
// classify every fault exactly as from-reset re-execution does.
func TestCheckpointedCampaignIdentical(t *testing.T) {
	for _, wl := range []string{"sha", "qsort"} {
		r := NewRunner(target(t, wl))
		g, err := r.RunGolden()
		if err != nil {
			t.Fatal(err)
		}
		c := r.NewCore()
		for _, s := range []lifetime.StructureID{lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D} {
			faults := sampling.Generate(s, c.StructureEntries(s), c.StructureEntryBits(s),
				g.Result.Cycles, 60, 21)
			plain := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))
			fast := mustRun(t)(r.RunAllCheckpointed(context.Background(), faults, &g.Result, 6))
			for i := range faults {
				if plain.Outcomes[i] != fast.Outcomes[i] {
					t.Errorf("%s/%v fault %v: replay %v vs checkpointed %v",
						wl, s, faults[i], plain.Outcomes[i], fast.Outcomes[i])
				}
			}
		}
	}
}

// TestCheckpointEdgeCycles: faults at the very first cycles and exactly at
// snapshot boundaries must be placeable.
func TestCheckpointEdgeCycles(t *testing.T) {
	r := NewRunner(target(t, "fft"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	set := r.BuildCheckpoints(4, g.Result.Cycles)
	for _, cyc := range []uint64{1, 2, set.cycles[1], set.cycles[1] + 1, g.Result.Cycles} {
		f := sampling.Generate(lifetime.StructRF, 256, 64, 1, 1, int64(cyc))[0]
		f.Cycle = cyc
		plain := r.RunFault(f, &g.Result)
		fast := r.RunFaultFrom(set, f, &g.Result)
		if plain != fast {
			t.Errorf("cycle %d: %v vs %v", cyc, plain, fast)
		}
	}
}
