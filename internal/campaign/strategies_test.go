package campaign

import (
	"context"
	"testing"

	"merlin/internal/fault"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
)

// strategyFaultList draws a randomized list for one structure and appends
// the scheduler's edge cases: cycle 0 (reset-state injection), cycle 1,
// faults landing exactly on checkpoint/fork cycles and one cycle after,
// the golden run's last cycle, and two faults sharing one fork cycle.
func strategyFaultList(c interface {
	StructureEntries(lifetime.StructureID) int
	StructureEntryBits(lifetime.StructureID) int
}, s lifetime.StructureID, goldenCycles uint64, n int, seed int64, ckptCycles []uint64) []fault.Fault {
	faults := sampling.Generate(s, c.StructureEntries(s), c.StructureEntryBits(s), goldenCycles, n, seed)
	edges := []uint64{0, 1, 2, goldenCycles}
	for _, cyc := range ckptCycles {
		edges = append(edges, cyc, cyc+1)
	}
	for i, cyc := range edges {
		f := faults[i%n]
		f.Cycle = cyc
		faults = append(faults, f)
	}
	// Two distinct faults at the identical cycle: one fork snapshot must
	// serve both.
	same := faults[0]
	same.Entry = (same.Entry + 1) % int32(c.StructureEntries(s))
	faults = append(faults, same)
	return faults
}

// TestStrategyDifferential: for randomized fault lists over three
// workloads (one per target structure), Replay, Checkpointed and Forked
// must produce identical per-fault outcome slices.
func TestStrategyDifferential(t *testing.T) {
	const k = 5
	cases := []struct {
		wl string
		s  lifetime.StructureID
	}{
		{"sha", lifetime.StructRF},
		{"qsort", lifetime.StructL1D},
		{"fft", lifetime.StructSQ},
	}
	for wi, tc := range cases {
		r := NewRunner(target(t, tc.wl))
		g, err := r.RunGolden()
		if err != nil {
			t.Fatal(err)
		}
		set := r.BuildCheckpoints(k, g.Result.Cycles)
		faults := strategyFaultList(r.NewCore(), tc.s, g.Result.Cycles, 50, int64(31+wi), set.cycles[1:])

		ctx := context.Background()
		replay := mustRun(t)(r.RunAll(ctx, faults, &g.Result))
		ckpt := mustRun(t)(r.RunAllWith(ctx, Checkpointed, faults, &g.Result, k))
		forked := mustRun(t)(r.RunAllWith(ctx, Forked, faults, &g.Result, 0))
		for i := range faults {
			if replay.Outcomes[i] != ckpt.Outcomes[i] {
				t.Errorf("%s/%v fault %v: replay %v vs checkpointed %v",
					tc.wl, tc.s, faults[i], replay.Outcomes[i], ckpt.Outcomes[i])
			}
			if replay.Outcomes[i] != forked.Outcomes[i] {
				t.Errorf("%s/%v fault %v: replay %v vs forked %v",
					tc.wl, tc.s, faults[i], replay.Outcomes[i], forked.Outcomes[i])
			}
		}
		if replay.Dist != forked.Dist || replay.Dist != ckpt.Dist {
			t.Errorf("%s/%v: distributions diverge: replay %v ckpt %v forked %v",
				tc.wl, tc.s, replay.Dist, ckpt.Dist, forked.Dist)
		}
		if forked.Serial <= 0 || forked.Wall <= 0 {
			t.Error("forked timing not recorded")
		}
	}
}

// TestForkedBoundedPool: the scheduler must stay correct at the tightest
// legal memory cap (one in-flight clone) and with constrained workers.
func TestForkedBoundedPool(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		c.StructureEntries(lifetime.StructRF), 64, g.Result.Cycles, 40, 17)
	want := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))

	r.Workers = 2
	r.MaxForks = 1
	got := mustRun(t)(r.RunAllForked(context.Background(), faults, &g.Result))
	for i := range faults {
		if want.Outcomes[i] != got.Outcomes[i] {
			t.Errorf("fault %v: replay %v vs bounded forked %v", faults[i], want.Outcomes[i], got.Outcomes[i])
		}
	}
}

// TestForkedEmptyAndSingle: degenerate campaign sizes must not deadlock
// the producer/worker handoff.
func TestForkedEmptyAndSingle(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	if res := mustRun(t)(r.RunAllForked(context.Background(), nil, &g.Result)); res.Dist.Total() != 0 || len(res.Outcomes) != 0 {
		t.Errorf("empty campaign: %+v", res)
	}
	one := []fault.Fault{{Structure: lifetime.StructRF, Entry: 255, Bit: 63, Cycle: 1}}
	if res := mustRun(t)(r.RunAllForked(context.Background(), one, &g.Result)); res.Outcomes[0] != Masked {
		t.Errorf("unused-register fault = %v, want Masked", res.Outcomes[0])
	}
}

// TestCheckpointBeforeCycleZero: a cycle-0 fault must replay from the
// reset snapshot. Regression test for the fc-1 underflow, which wrapped to
// ^uint64(0) and selected a snapshot after the fault cycle.
func TestCheckpointBeforeCycleZero(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	set := r.BuildCheckpoints(4, g.Result.Cycles)
	for _, fc := range []uint64{0, 1} {
		if c := set.before(fc); c.Cycle() != 0 {
			t.Errorf("before(%d) returned snapshot at cycle %d, want the reset state", fc, c.Cycle())
		}
	}
	f := fault.Fault{Structure: lifetime.StructRF, Entry: 4, Bit: 9, Cycle: 0}
	if plain, fast := r.RunFault(f, &g.Result), r.RunFaultFrom(set, f, &g.Result); plain != fast {
		t.Errorf("cycle-0 fault: replay %v vs checkpointed %v", plain, fast)
	}
}

// TestApplyFaultMultiBitClamp: a multi-bit fault reaching past the entry
// width must flip only the in-range bits.
func TestApplyFaultMultiBitClamp(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	got := r.NewCore()
	applyFault(got, fault.Fault{Structure: lifetime.StructRF, Entry: 7, Bit: 62, Width: 4})
	want := r.NewCore()
	want.FlipBit(lifetime.StructRF, 7, 62)
	want.FlipBit(lifetime.StructRF, 7, 63)
	if got.StateHash() != want.StateHash() {
		t.Error("multi-bit fault not clamped to the entry width")
	}

	// Width 0 and 1 both encode the single-bit model.
	for _, w := range []uint8{0, 1} {
		got := r.NewCore()
		applyFault(got, fault.Fault{Structure: lifetime.StructRF, Entry: 3, Bit: 5, Width: w})
		want := r.NewCore()
		want.FlipBit(lifetime.StructRF, 3, 5)
		if got.StateHash() != want.StateHash() {
			t.Errorf("width %d: applyFault != single FlipBit", w)
		}
	}
}

// TestStrategyNames: the enum round-trips through its flag spelling.
func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{Replay, Checkpointed, Forked} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("warp"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
	if Strategy(250).String() == "" {
		t.Error("out-of-range Strategy has no diagnostic name")
	}
}
