package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"

	"merlin/internal/fault"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
)

// TestSchedulerCancellation is the differential cancellation suite: for
// every strategy, cancelling mid-campaign must (a) stop within one fault
// of the cancellation point (exact with a single worker), (b) propagate
// context.Canceled, (c) return a partial Result whose classified outcomes
// are bit-identical to an uncancelled run's, and (d) keep the accounting
// consistent: Dist.Total() + Cancelled == len(faults).
func TestSchedulerCancellation(t *testing.T) {
	const nFaults = 60
	const cancelAfter = 10

	r := NewRunner(target(t, "sha"))
	r.Workers = 1 // single worker makes the stop bound exact
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		c.StructureEntries(lifetime.StructRF), 64, g.Result.Cycles, nFaults, 23)
	ref := mustRun(t)(r.RunAll(context.Background(), faults, &g.Result))

	for _, strat := range []Strategy{Replay, Checkpointed, Forked} {
		ctx, cancel := context.WithCancel(context.Background())
		var classified atomic.Int64
		r.OnOutcome = func(idx int, f fault.Fault, o Outcome) {
			if classified.Add(1) == cancelAfter {
				cancel()
			}
		}
		res, err := r.RunAllWith(ctx, strat, faults, &g.Result, 4)
		r.OnOutcome = nil
		cancel()

		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", strat, err)
		}
		total := res.Dist.Total()
		if total+res.Cancelled != len(faults) {
			t.Fatalf("%v: Dist.Total() %d + Cancelled %d != %d faults",
				strat, total, res.Cancelled, len(faults))
		}
		if res.Injected != total {
			t.Errorf("%v: Injected %d != classified %d", strat, res.Injected, total)
		}
		if res.Cancelled == 0 {
			t.Fatalf("%v: campaign ran to completion despite cancellation", strat)
		}
		// Stop bound: the fault mid-flight when cancel() fired may finish,
		// nothing beyond it may start.
		if total > cancelAfter+1 {
			t.Errorf("%v: classified %d faults, want <= %d (cancel after %d + one in flight)",
				strat, total, cancelAfter+1, cancelAfter)
		}
		// Everything classified before the cut is bit-identical to the
		// uncancelled reference; everything after carries the sentinel.
		marked := 0
		for i, o := range res.Outcomes {
			if o == Cancelled {
				marked++
				continue
			}
			if o != ref.Outcomes[i] {
				t.Errorf("%v: fault %d classified %v, reference %v", strat, i, o, ref.Outcomes[i])
			}
		}
		if marked != res.Cancelled {
			t.Errorf("%v: %d Cancelled sentinels vs Cancelled count %d", strat, marked, res.Cancelled)
		}
	}
}

// TestSchedulerCancellationMultiWorker pins the documented stop bound
// under real concurrency: with w workers, at most one in-flight fault per
// worker (plus, for the forked scheduler, one handed-off job) may finish
// after the cancellation point.
func TestSchedulerCancellationMultiWorker(t *testing.T) {
	const nFaults = 120
	const cancelAfter = 10
	const workers = 4

	r := NewRunner(target(t, "sha"))
	r.Workers = workers
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		c.StructureEntries(lifetime.StructRF), 64, g.Result.Cycles, nFaults, 29)

	for _, strat := range []Strategy{Replay, Checkpointed, Forked} {
		ctx, cancel := context.WithCancel(context.Background())
		var classified atomic.Int64
		r.OnOutcome = func(idx int, f fault.Fault, o Outcome) {
			if classified.Add(1) == cancelAfter {
				cancel()
			}
		}
		res, err := r.RunAllWith(ctx, strat, faults, &g.Result, 4)
		r.OnOutcome = nil
		cancel()

		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", strat, err)
		}
		if total := res.Dist.Total(); total > cancelAfter+workers+1 {
			t.Errorf("%v: classified %d faults after cancel at %d with %d workers (bound %d)",
				strat, total, cancelAfter, workers, cancelAfter+workers+1)
		}
		if res.Dist.Total()+res.Cancelled != len(faults) {
			t.Errorf("%v: accounting broken: %d + %d != %d",
				strat, res.Dist.Total(), res.Cancelled, len(faults))
		}
	}
}

// TestPreCancelledContext: a context cancelled before the campaign starts
// must classify nothing and still return a consistent (all-cancelled)
// partial result.
func TestPreCancelledContext(t *testing.T) {
	r := NewRunner(target(t, "sha"))
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	c := r.NewCore()
	faults := sampling.Generate(lifetime.StructRF,
		c.StructureEntries(lifetime.StructRF), 64, g.Result.Cycles, 20, 5)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{Replay, Checkpointed, Forked} {
		res, err := r.RunAllWith(ctx, strat, faults, &g.Result, 3)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", strat, err)
		}
		if res.Cancelled == 0 || res.Dist.Total()+res.Cancelled != len(faults) {
			t.Fatalf("%v: inconsistent partial result: total %d cancelled %d of %d",
				strat, res.Dist.Total(), res.Cancelled, len(faults))
		}
	}
}

// TestOutcomeTextRoundTrip: every outcome marshals to its class name and
// back, case-insensitively; JSON carrying outcomes reads names, not ints.
func TestOutcomeTextRoundTrip(t *testing.T) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		text, err := o.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		var back Outcome
		if err := back.UnmarshalText(text); err != nil || back != o {
			t.Errorf("round trip %v -> %s -> %v (%v)", o, text, back, err)
		}
	}
	if got, err := ParseOutcome("sdc"); err != nil || got != SDC {
		t.Errorf("ParseOutcome is not case-insensitive: %v, %v", got, err)
	}
	if _, err := ParseOutcome("meltdown"); err == nil {
		t.Error("ParseOutcome accepted an unknown class")
	}
	raw, err := json.Marshal([]Outcome{Masked, SDC, Crash})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `["Masked","SDC","Crash"]` {
		t.Errorf("outcome JSON = %s, want class names", raw)
	}
}

// TestStrategyTextRoundTrip: strategies marshal as their flag names.
func TestStrategyTextRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Replay, Checkpointed, Forked} {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Strategy
		if err := back.UnmarshalText(text); err != nil || back != s {
			t.Errorf("round trip %v -> %s -> %v (%v)", s, text, back, err)
		}
	}
	var s Strategy
	if err := s.UnmarshalText([]byte("FORKED")); err != nil || s != Forked {
		t.Errorf("case-insensitive unmarshal: %v, %v", s, err)
	}
	if raw, _ := json.Marshal(Forked); string(raw) != `"forked"` {
		t.Errorf("strategy JSON = %s", raw)
	}
}
