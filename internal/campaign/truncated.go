package campaign

import (
	"context"
	"fmt"

	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/lifetime"
)

// TruncatedGolden is the fault-free reference for a run cut at a fixed
// cycle, mirroring the paper's Simpoint-interval experiments (§4.4.3.4):
// since the run does not finish, Masked/Unknown are decided by comparing
// the complete reachable state at the cut.
type TruncatedGolden struct {
	Cut    uint64
	Result cpu.RunResult
	Hash   uint64
	Tracer *lifetime.Tracer
}

// RunGoldenTruncated executes the fault-free run up to cut cycles and
// captures its architectural state digest.
func (r *Runner) RunGoldenTruncated(cut uint64, track ...lifetime.StructureID) (*TruncatedGolden, error) {
	c := r.NewCore()
	var tr *lifetime.Tracer
	if len(track) > 0 {
		tr = lifetime.NewTracer(track...)
		c.AttachTracer(tr)
	}
	res := c.Run(cut)
	if res.Halt != cpu.CycleLimit {
		return nil, fmt.Errorf("campaign: truncated golden of %q ended early: %v after %d cycles", r.Prog.Name, res.Halt, res.Cycles)
	}
	c.FlushDataCaches()
	return &TruncatedGolden{Cut: cut, Result: res, Hash: c.StateHash(), Tracer: tr}, nil
}

// RunFaultTruncated injects f, runs to the cut, and classifies with the
// paper's truncated scheme: Masked / DUE / Crash / Assert / Unknown. SDCs
// and Timeouts cannot be identified because the program never finishes;
// any fault whose effects are still present in the machine state at the
// cut is Unknown.
func (r *Runner) RunFaultTruncated(f fault.Fault, tg *TruncatedGolden) (out Outcome) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*cpu.AssertError); ok {
				out = Assert
			} else {
				out = Crash
			}
		}
	}()
	c := r.NewCore()
	for c.Cycle()+1 < f.Cycle && c.Halted() == cpu.Running {
		c.Step()
	}
	applyFault(c, f)
	res := c.Run(tg.Cut)
	switch res.Halt {
	case cpu.CycleLimit:
		// Still running at the cut, as the golden run is.
	case cpu.HaltOK:
		// The fault steered execution to completion before the interval
		// ended; its effect on the full program is undecidable here.
		return Unknown
	default:
		return Crash
	}
	outputSame := equalU64(res.Output, tg.Result.Output)
	excSame := equalU32(res.ExcLog, tg.Result.ExcLog)
	if !outputSame {
		return Unknown // corrupted output already visible; still "not finished"
	}
	c.FlushDataCaches()
	if c.StateHash() == tg.Hash {
		if !excSame {
			return DUE
		}
		return Masked
	}
	if !excSame {
		return DUE
	}
	return Unknown
}

// RunAllTruncated is the truncated-run analogue of RunAll, with the same
// cancellation contract.
func (r *Runner) RunAllTruncated(ctx context.Context, faults []fault.Fault, tg *TruncatedGolden) (*Result, error) {
	res := newResult(len(faults))
	parallelFor(ctx, r.Workers, len(faults), func(i int) {
		res.Outcomes[i] = r.RunFaultTruncated(faults[i], tg)
	})
	return res, res.finalize(ctx)
}
