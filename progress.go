package merlin

// ProgressKind discriminates the events of a Session's progress stream.
type ProgressKind uint8

const (
	// ProgressPhaseStart marks a pipeline phase beginning.
	ProgressPhaseStart ProgressKind = iota
	// ProgressPhaseDone marks a pipeline phase completing. For
	// PhasePreprocess it also carries the golden-run artifact cache
	// outcome (CacheHit, CacheErr).
	ProgressPhaseDone
	// ProgressFault reports one classified fault of the injection (or
	// baseline) phase.
	ProgressFault
)

// Phase names a pipeline phase of a Session, mirroring the paper's Fig 2.
type Phase string

// The phases a Session reports progress for. PhaseBatch is emitted only
// by Batch: its preprocess event covers the one golden run every
// structure shares, and its done event carries the cross-structure
// summary.
const (
	PhasePreprocess Phase = "preprocess"
	PhaseReduce     Phase = "reduce"
	PhaseInject     Phase = "inject"
	PhaseBaseline   Phase = "baseline"
	PhaseBatch      Phase = "batch"
)

// Progress is one event of a Session's typed progress stream: phase
// transitions, the cache hit/miss of Preprocess, and per-fault outcomes
// (subsuming the old campaign.Runner.OnOutcome hook). Fault events are
// emitted from injection worker goroutines, concurrently and in completion
// (not input) order — a WithProgress callback must be safe for concurrent
// use and should return quickly.
type Progress struct {
	Kind  ProgressKind
	Phase Phase
	// Structure names the structure the event belongs to ("RF", "SQ",
	// "L1D"): the session's injection target for session-phase and fault
	// events, empty for batch-level events (the shared-golden preprocess
	// and the batch summary, which span every structure of the batch).
	Structure string
	// Msg is a one-line human-readable summary (ProgressPhaseDone only).
	Msg string

	// CacheHit and CacheErr describe the golden-run artifact cache
	// outcome on the preprocess ProgressPhaseDone event: whether the
	// golden run was served from the cache, and a non-fatal store failure
	// if persisting a miss failed.
	CacheHit bool
	CacheErr error

	// SnapshotHit and CyclesPerSec are set on the inject/baseline
	// ProgressPhaseDone event: whether the checkpoint ladder was served
	// from a shared SnapshotCache (skipping the rebuild), and the
	// campaign's effective simulation throughput (simulated cycles per
	// wall-clock second across all injection workers).
	SnapshotHit  bool
	CyclesPerSec float64

	// StaticPruned is set on the reduce ProgressPhaseDone event: how many
	// fault sites the guestflow static pre-pruner classified masked
	// without a dynamic interval lookup (0 unless WithStaticPrune).
	StaticPruned int

	// ProgressFault events: the fault's index in the injected list, the
	// fault itself, and its classification.
	Index   int
	Fault   Fault
	Outcome Outcome
}
