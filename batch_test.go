package merlin

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// batchOpts is the shared configuration of the differential tests: small
// enough to run per structure, deterministic in seed.
func batchOpts(extra ...Option) []Option {
	return append([]Option{
		WithFaults(200),
		WithSeed(11),
		WithStrategy(StrategyForked),
	}, extra...)
}

// reportSemantics strips a Report down to the fields that must be
// bit-identical between a batch member and a standalone session: the
// classification and everything derived from it. Performance counters
// (Wall, Clones, SnapshotHit, ...) legitimately differ — the batch shares
// ladders and pools.
func reportSemantics(r *Report) Report {
	return Report{
		Workload:      r.Workload,
		Structure:     r.Structure,
		GoldenCycles:  r.GoldenCycles,
		InitialFaults: r.InitialFaults,
		ACEMasked:     r.ACEMasked,
		PostACE:       r.PostACE,
		Injected:      r.Injected,
		Cancelled:     r.Cancelled,
		StepOneGroups: r.StepOneGroups,
		FinalGroups:   r.FinalGroups,
		ACESpeedup:    r.ACESpeedup,
		FinalSpeedup:  r.FinalSpeedup,
		Dist:          r.Dist,
		AVF:           r.AVF,
		FIT:           r.FIT,
		ACELikeAVF:    r.ACELikeAVF,
		ACELikeFIT:    r.ACELikeFIT,
		RepOutcomes:   append([]Outcome(nil), r.RepOutcomes...),
	}
}

// TestBatchMatchesStandaloneSessions is the batch acceptance criterion: a
// 3-structure batch performs exactly one golden run, and each structure's
// report is bit-identical to a standalone single-structure session with
// the same configuration and seed.
func TestBatchMatchesStandaloneSessions(t *testing.T) {
	ctx := context.Background()
	b, err := StartBatch(ctx, "sha", batchOpts(WithStructures(RF, SQ, L1D))...)
	if err != nil {
		t.Fatal(err)
	}
	batchRep, err := b.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if batchRep.GoldenRuns != 1 {
		t.Fatalf("batch performed %d golden runs, want exactly 1", batchRep.GoldenRuns)
	}
	if len(batchRep.Reports) != 3 || len(batchRep.Variance) != 3 {
		t.Fatalf("batch produced %d reports / %d variance entries, want 3 / 3",
			len(batchRep.Reports), len(batchRep.Variance))
	}

	var wantFIT, wantACELikeFIT float64
	for i, s := range []Structure{RF, SQ, L1D} {
		got := batchRep.Reports[i]
		if got.Structure != s {
			t.Fatalf("report %d is for %v, want %v (request order)", i, got.Structure, s)
		}
		solo, err := Start(ctx, "sha", batchOpts(WithStructure(s))...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reportSemantics(got), reportSemantics(want)) {
			t.Fatalf("%v: batch report diverged from standalone session:\nbatch      %+v\nstandalone %+v",
				s, reportSemantics(got), reportSemantics(want))
		}
		wantFIT += want.FIT
		wantACELikeFIT += want.ACELikeFIT
	}

	// Cross-structure totals: FIT rates add; AVF is bit-weighted and must
	// sit inside the per-structure range.
	if diff := batchRep.FIT - wantFIT; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("batch FIT = %v, want sum of per-structure FITs %v", batchRep.FIT, wantFIT)
	}
	if diff := batchRep.ACELikeFIT - wantACELikeFIT; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("batch ACELikeFIT = %v, want %v", batchRep.ACELikeFIT, wantACELikeFIT)
	}
	lo, hi := batchRep.Reports[0].AVF, batchRep.Reports[0].AVF
	for _, r := range batchRep.Reports {
		if r.AVF < lo {
			lo = r.AVF
		}
		if r.AVF > hi {
			hi = r.AVF
		}
	}
	if batchRep.AVF < lo || batchRep.AVF > hi {
		t.Fatalf("bit-weighted batch AVF %v outside per-structure range [%v, %v]", batchRep.AVF, lo, hi)
	}
	if batchRep.TotalBits <= 0 {
		t.Fatalf("batch TotalBits = %d, want > 0", batchRep.TotalBits)
	}

	// §4.4.5 sanity on the variance bounds: MeRLiN's variance dominates
	// the baseline's, and the mean matches the campaign's non-masked
	// expectation scale (both are probabilities in [0, 1]).
	for i, v := range batchRep.Variance {
		if v.VarMerlin < v.VarBaseline {
			t.Fatalf("structure %d: VarMerlin %v < VarBaseline %v", i, v.VarMerlin, v.VarBaseline)
		}
		if v.Mean < 0 || v.Mean > 1 {
			t.Fatalf("structure %d: mean %v outside [0, 1]", i, v.Mean)
		}
	}
}

// TestBatchSharedArtifactCache: one batch stores one artifact; a repeat
// batch is served from it with zero golden runs and a bit-identical
// report.
func TestBatchSharedArtifactCache(t *testing.T) {
	ctx := context.Background()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := func() *BatchReport {
		t.Helper()
		b, err := StartBatch(ctx, "sha", batchOpts(WithStructures(RF, SQ, L1D), WithCache(cache))...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := b.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	cold := run()
	if cold.CacheHit || cold.GoldenRuns != 1 {
		t.Fatalf("cold batch: CacheHit=%v GoldenRuns=%d, want false / 1", cold.CacheHit, cold.GoldenRuns)
	}
	if st := cache.Stats(); st.Puts != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cold batch cache stats = %+v, want exactly 1 miss / 1 put", st)
	}

	warm := run()
	if !warm.CacheHit || warm.GoldenRuns != 0 {
		t.Fatalf("warm batch: CacheHit=%v GoldenRuns=%d, want true / 0", warm.CacheHit, warm.GoldenRuns)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("warm batch cache stats = %+v, want exactly 1 hit", st)
	}
	for i := range cold.Reports {
		if !reflect.DeepEqual(reportSemantics(cold.Reports[i]), reportSemantics(warm.Reports[i])) {
			t.Fatalf("structure %d: cache-served batch diverged from cold batch", i)
		}
	}
}

// TestBatchProgressTagging: fault and per-structure phase events carry
// the structure name; the shared preprocess and the batch summary carry
// none (they span all structures).
func TestBatchProgressTagging(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	ctx := context.Background()
	b, err := StartBatch(ctx, "sha", batchOpts(
		WithStructures(RF, SQ),
		WithProgress(func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, p)
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(ctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	tagged := map[string]int{}
	var batchDone, sharedPre bool
	for _, p := range events {
		switch {
		case p.Kind == ProgressFault:
			if p.Structure != "RF" && p.Structure != "SQ" {
				t.Fatalf("fault event tagged %q, want RF or SQ", p.Structure)
			}
			tagged[p.Structure]++
		case p.Phase == PhasePreprocess && p.Kind == ProgressPhaseDone:
			sharedPre = true
			if p.Structure != "" {
				t.Fatalf("shared preprocess event tagged %q, want untagged", p.Structure)
			}
			if !strings.Contains(p.Msg, "2 structures") {
				t.Fatalf("preprocess summary %q does not mention the structure count", p.Msg)
			}
		case p.Phase == PhaseBatch:
			batchDone = true
			if p.Structure != "" {
				t.Fatalf("batch summary tagged %q, want untagged", p.Structure)
			}
		}
	}
	if tagged["RF"] == 0 || tagged["SQ"] == 0 {
		t.Fatalf("fault events per structure = %v, want both structures represented", tagged)
	}
	if !sharedPre || !batchDone {
		t.Fatalf("missing batch-level events: preprocess=%v batch=%v", sharedPre, batchDone)
	}
}

// TestBatchCancellation: cancelling mid-injection stops the whole batch —
// the structure under injection returns a partial report, later
// structures never run, and Run surfaces ctx.Err().
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	b, err := StartBatch(ctx, "sha",
		WithStructures(RF, SQ, L1D),
		WithFaults(4000), WithSeed(7), WithWorkers(1),
		WithProgress(func(p Progress) {
			if p.Kind == ProgressFault && seen.Add(1) == 3 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled batch returned no partial report")
	}
	if len(rep.Reports) == 0 || len(rep.Reports) == 3 && rep.Reports[2].Cancelled == 0 {
		t.Fatalf("cancelled batch reports = %d complete, want a partial tail", len(rep.Reports))
	}
	last := rep.Reports[len(rep.Reports)-1]
	if last.Cancelled == 0 {
		t.Fatalf("last report of a cancelled batch has no Cancelled count")
	}
}

// TestStartBatchValidation: option errors surface at StartBatch, Start
// rejects the batch-only option, and the default target list is all
// structures.
func TestStartBatchValidation(t *testing.T) {
	ctx := context.Background()

	if _, err := Start(ctx, "sha", WithStructures(RF, SQ)); err == nil {
		t.Fatal("Start accepted WithStructures")
	}
	if _, err := StartBatch(ctx, "sha", WithStructures()); err == nil {
		t.Fatal("StartBatch accepted an empty WithStructures")
	}
	if _, err := StartBatch(ctx, "sha", WithStructures(Structure(9))); err == nil {
		t.Fatal("StartBatch accepted an unknown structure")
	}
	if _, err := StartBatch(ctx, "no-such-workload"); err == nil {
		t.Fatal("StartBatch accepted an unknown workload")
	}
	if _, err := StartBatch(ctx, "sha", WithFaults(-1)); err == nil {
		t.Fatal("StartBatch accepted a negative fault count")
	}

	b, err := StartBatch(ctx, "sha")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Structures(), AllStructures(); !reflect.DeepEqual(got, want) {
		t.Fatalf("default batch structures = %v, want %v", got, want)
	}
	dedup, err := StartBatch(ctx, "sha", WithStructures(SQ, RF, SQ, RF))
	if err != nil {
		t.Fatal(err)
	}
	if got := dedup.Structures(); !reflect.DeepEqual(got, []Structure{SQ, RF}) {
		t.Fatalf("deduped batch structures = %v, want [SQ RF] (request order)", got)
	}
}
