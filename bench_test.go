// Benchmarks regenerating each table and figure of the paper's evaluation
// at reduced scale (one per table/figure; cmd/experiments runs the same
// generators at arbitrary scale). Key reproduced quantities are attached
// as custom benchmark metrics so `go test -bench` output documents the
// measured shape next to the paper's numbers.
package merlin_test

import (
	"context"
	"testing"
	"time"

	"merlin"

	"merlin/internal/campaign"
	"merlin/internal/experiments"
	"merlin/internal/lifetime"
	reduction "merlin/internal/merlin"
	"merlin/internal/stats"
)

func benchOpts(faults int, wls ...string) experiments.Options {
	return experiments.Options{Faults: faults, Workloads: wls, Seed: 1}
}

// BenchmarkTable1 exercises the baseline configuration golden run.
func BenchmarkTable1_BaselineConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty")
		}
		rep, err := merlin.Run(merlin.Config{Workload: "sha", Structure: merlin.RF, Faults: 200, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.GoldenCycles), "golden-cycles")
	}
}

// BenchmarkTable3 computes the analytic exhaustive-list comparison.
func BenchmarkTable3_ExhaustiveModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := reduction.DefaultExhaustiveModel().Table3()
		b.ReportMetric(rows[0].Gain, "merlin-gain")
		b.ReportMetric(rows[1].Gain, "relyzer-gain")
	}
}

// BenchmarkTable4 runs the truncated-run accuracy study (gcc, bzip2).
func BenchmarkTable4_TruncatedAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(context.Background(), benchOpts(150))
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for j := 0; j < len(r.Rows); j += 2 {
			for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
				d := 100 * (r.Rows[j].Dist.Share(o) - r.Rows[j+1].Dist.Share(o))
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		b.ReportMetric(worst, "worst-diff-pp")
	}
}

// BenchmarkFigure6 measures fine-grained homogeneity.
func BenchmarkFigure6_FineHomogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(context.Background(), benchOpts(250, "sha"))
		if err != nil {
			b.Fatal(err)
		}
		var fine float64
		for _, c := range r.Campaigns {
			fine += c.Homog.Fine
		}
		b.ReportMetric(fine/float64(len(r.Campaigns)), "homogeneity")
	}
}

// BenchmarkFigure7 measures coarse homogeneity and perfect-group share.
func BenchmarkFigure7_CoarseHomogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(context.Background(), benchOpts(250, "fft"))
		if err != nil {
			b.Fatal(err)
		}
		var coarse, perfect float64
		for _, c := range r.Campaigns {
			coarse += c.Homog.Coarse
			perfect += c.Homog.PerfectShare
		}
		n := float64(len(r.Campaigns))
		b.ReportMetric(coarse/n, "coarse-homog")
		b.ReportMetric(100*perfect/n, "perfect-%")
	}
}

func benchSpeedup(b *testing.B, f func(context.Context, experiments.Options) (*experiments.SpeedupResult, error), faults int, wls ...string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f(context.Background(), benchOpts(faults, wls...))
		if err != nil {
			b.Fatal(err)
		}
		var ace, final float64
		for _, c := range r.Cells {
			ace += c.ACE
			final += c.Final
		}
		n := float64(len(r.Cells))
		b.ReportMetric(ace/n, "ace-speedup")
		b.ReportMetric(final/n, "final-speedup")
	}
}

// BenchmarkFigure8 regenerates the register-file speedups.
func BenchmarkFigure8_RFSpeedup(b *testing.B) {
	benchSpeedup(b, experiments.Fig8, 2000, "sha", "qsort")
}

// BenchmarkFigure9 regenerates the store-queue speedups.
func BenchmarkFigure9_SQSpeedup(b *testing.B) {
	benchSpeedup(b, experiments.Fig9, 2000, "sha", "qsort")
}

// BenchmarkFigure10 regenerates the L1D speedups.
func BenchmarkFigure10_L1DSpeedup(b *testing.B) {
	benchSpeedup(b, experiments.Fig10, 2000, "sha", "qsort")
}

// BenchmarkFigure11 measures per-injection cost and extrapolates campaign
// wall-clock, baseline vs MeRLiN.
func BenchmarkFigure11_EstimationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(context.Background(), benchOpts(300, "sha"))
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		rows := 0
		for _, row := range r.Rows {
			if row.MerlinSeconds > 0 {
				ratio += row.BaselineSeconds / row.MerlinSeconds
				rows++
			}
		}
		if rows > 0 {
			b.ReportMetric(ratio/float64(rows), "time-speedup")
		}
	}
}

// BenchmarkFigure12 regenerates the SPEC speedups.
func BenchmarkFigure12_SPECSpeedup(b *testing.B) {
	benchSpeedup(b, experiments.Fig12, 2000, "mcf", "libquantum")
}

// BenchmarkFigure13 regenerates the initial-list scaling study.
func BenchmarkFigure13_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts(2000, "qsort")
		o.ScaleFactor = 4
		r, err := experiments.Fig13(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgScaleUp, "speedup-scale")
		b.ReportMetric(r.AvgInject, "injected-scale")
	}
}

// BenchmarkFigure14 compares MeRLiN's extrapolation against full post-ACE
// injection.
func BenchmarkFigure14_PostACEAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(context.Background(), benchOpts(250, "qsort"))
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, c := range r.Campaigns {
			for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
				d := 100 * (c.MerlinPostACE.Share(o) - c.FullPostACE.Share(o))
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		b.ReportMetric(worst, "worst-diff-pp")
	}
}

// BenchmarkFigure15 compares the extrapolated full-list classification
// against the comprehensive baseline.
func BenchmarkFigure15_BaselineAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := merlin.Config{Workload: "fft", Structure: merlin.SQ, Faults: 400, Seed: 2}
		base, err := merlin.RunBaseline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep := base.Artifacts.Inject()
		worst := 0.0
		for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
			d := 100 * (rep.Dist.Share(o) - base.Dist.Share(o))
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(worst, "worst-diff-pp")
		b.ReportMetric(float64(base.Faults)/float64(rep.Injected), "speedup")
	}
}

// BenchmarkFigure16 computes FIT rates for baseline, MeRLiN and ACE-like.
func BenchmarkFigure16_FIT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := merlin.Run(merlin.Config{Workload: "sha", Structure: merlin.RF, Faults: 1000, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.FIT, "merlin-fit")
		b.ReportMetric(rep.ACELikeFIT, "acelike-fit")
	}
}

// BenchmarkFigure17 compares the Relyzer heuristic's inaccuracy with
// MeRLiN's.
func BenchmarkFigure17_RelyzerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(context.Background(), benchOpts(300, "stringsearch"))
		if err != nil {
			b.Fatal(err)
		}
		var rel, mer float64
		for _, c := range r.Campaigns {
			for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
				d := 100 * (c.RelyzerPostACE.Share(o) - c.FullPostACE.Share(o))
				if d < 0 {
					d = -d
				}
				if d > rel {
					rel = d
				}
				d = 100 * (c.MerlinPostACE.Share(o) - c.FullPostACE.Share(o))
				if d < 0 {
					d = -d
				}
				if d > mer {
					mer = d
				}
			}
		}
		b.ReportMetric(rel, "relyzer-worst-pp")
		b.ReportMetric(mer, "merlin-worst-pp")
	}
}

// BenchmarkTheory evaluates the §4.4.5 variance analysis on an observed
// campaign structure.
func BenchmarkTheory_VarianceAnalysis(b *testing.B) {
	r, err := experiments.RunAccuracy(context.Background(), benchOpts(400, "sha"))
	if err != nil {
		b.Fatal(err)
	}
	var sizes, nonMasked []int
	total := 0
	for _, c := range r.Campaigns {
		sizes = append(sizes, c.GroupSizes...)
		nonMasked = append(nonMasked, c.GroupNonMasked...)
		total += c.InitialFaults
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := stats.FromObserved(total, sizes, nonMasked).Analyze()
		b.ReportMetric(rep.OrdersBaseline, "orders-baseline")
		b.ReportMetric(rep.OrdersMerlin, "orders-merlin")
	}
}

// strategyArtifacts prepares the 1,000-fault RF campaign every strategy
// benchmark replays, so Replay/Checkpointed/Forked are timed on an
// identical fault list and golden run.
func strategyArtifacts(b *testing.B) *merlin.Artifacts {
	b.Helper()
	a, err := merlin.Preprocess(merlin.Config{Workload: "sha", Structure: merlin.RF, Faults: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func benchStrategy(b *testing.B, s campaign.Strategy) {
	a := strategyArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.Runner.RunAllWith(context.Background(), s, a.Faults, &a.Golden.Result, campaign.DefaultCheckpoints)
		if err != nil {
			b.Fatal(err)
		}
		if res.Dist.Total() != len(a.Faults) {
			b.Fatal("missing outcomes")
		}
		b.ReportMetric(res.Wall.Seconds()*1000, "wall-ms")
		b.ReportMetric(res.Serial.Seconds()*1000, "serial-ms")
	}
}

// BenchmarkStrategy_Replay times the from-reset baseline scheduler.
func BenchmarkStrategy_Replay(b *testing.B) { benchStrategy(b, campaign.Replay) }

// BenchmarkStrategy_Checkpointed times the k-snapshot scheduler.
func BenchmarkStrategy_Checkpointed(b *testing.B) { benchStrategy(b, campaign.Checkpointed) }

// BenchmarkStrategy_Forked times the fork-on-fault scheduler.
func BenchmarkStrategy_Forked(b *testing.B) { benchStrategy(b, campaign.Forked) }

// BenchmarkStrategy_Speedup runs all three schedulers on the identical
// campaign and reports Forked's and Checkpointed's wall-clock and
// serial-equivalent speedups over Replay (and verifies the outcomes agree,
// so the reported speedups are for bit-identical results).
func BenchmarkStrategy_Speedup(b *testing.B) {
	a := strategyArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay, _ := a.Runner.RunAllWith(context.Background(), campaign.Replay, a.Faults, &a.Golden.Result, 0)
		ckpt, _ := a.Runner.RunAllWith(context.Background(), campaign.Checkpointed, a.Faults, &a.Golden.Result, campaign.DefaultCheckpoints)
		forked, _ := a.Runner.RunAllWith(context.Background(), campaign.Forked, a.Faults, &a.Golden.Result, 0)
		for j := range replay.Outcomes {
			if replay.Outcomes[j] != forked.Outcomes[j] || replay.Outcomes[j] != ckpt.Outcomes[j] {
				b.Fatalf("fault %d: outcomes diverge across strategies", j)
			}
		}
		b.ReportMetric(replay.Wall.Seconds()/ckpt.Wall.Seconds(), "ckpt-wall-x")
		b.ReportMetric(replay.Serial.Seconds()/ckpt.Serial.Seconds(), "ckpt-serial-x")
		b.ReportMetric(replay.Wall.Seconds()/forked.Wall.Seconds(), "forked-wall-x")
		b.ReportMetric(replay.Serial.Seconds()/forked.Serial.Seconds(), "forked-serial-x")
	}
}

// BenchmarkGoldenRun measures raw simulator throughput (cycles/second) on
// the paper's baseline configuration.
func BenchmarkGoldenRun_SimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		a, err := merlin.Preprocess(merlin.Config{Workload: "susan_c", Structure: merlin.RF, Faults: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cycles = a.Golden.Result.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkACELikeAnalysis isolates the interval-building step.
func BenchmarkACELikeAnalysis_Build(b *testing.B) {
	a, err := merlin.Preprocess(merlin.Config{Workload: "bzip2", Structure: merlin.L1D, Faults: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	log := a.Golden.Tracer.Log(merlin.L1D)
	core := a.Runner.NewCore()
	entries := core.StructureEntries(merlin.L1D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := lifetime.Build(log, merlin.L1D, entries, 64, a.Golden.Result.Cycles)
		b.ReportMetric(float64(len(an.Intervals)), "intervals")
	}
}

// BenchmarkGrouping isolates phase 2 (the fault-list reduction itself).
func BenchmarkGrouping_Reduce(b *testing.B) {
	a, err := merlin.Preprocess(merlin.Config{Workload: "qsort", Structure: merlin.RF, Faults: 20000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := reduction.Reduce(a.Analysis, a.Faults, reduction.DefaultOptions())
		b.ReportMetric(red.FinalSpeedup(), "final-speedup")
	}
}

// BenchmarkAblation evaluates the grouping design choices (step-2 byte
// grouping, representatives per group) against ground truth.
func BenchmarkAblation_GroupingChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(context.Background(), benchOpts(800, "qsort"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].WorstDiff, "step1-only-pp")
		b.ReportMetric(r.Rows[1].WorstDiff, "paper-pp")
	}
}

// benchBatch3 is the shared harness of the batch benchmarks: a
// 3-structure qsort campaign, big enough that the golden run dominates a
// sequential re-trace. wall-ms is the mean per-iteration wall-clock
// across all of b.N (ReportMetric is last-call-wins, so per-iteration
// reporting would record only the warmest run).
func benchBatch3(b *testing.B, run func(b *testing.B)) {
	b.Helper()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		run(b)
	}
	b.ReportMetric(time.Since(start).Seconds()*1000/float64(b.N), "wall-ms")
}

// BenchmarkBatch_SharedGolden times a 3-structure batch campaign: one
// golden run traced for RF, SQ and L1D, per-structure injections sharing
// the clone pool and checkpoint ladder.
func BenchmarkBatch_SharedGolden(b *testing.B) {
	benchBatch3(b, func(b *testing.B) {
		ctx := context.Background()
		batch, err := merlin.StartBatch(ctx, "qsort",
			merlin.WithStructures(merlin.RF, merlin.SQ, merlin.L1D),
			merlin.WithFaults(300), merlin.WithSeed(1),
			merlin.WithStrategy(merlin.StrategyForked))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := batch.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if rep.GoldenRuns != 1 {
			b.Fatalf("batch ran %d golden runs", rep.GoldenRuns)
		}
	})
}

// BenchmarkBatch_Sequential3x times the pre-batch equivalent: three
// standalone sessions, each paying its own golden run and ladder — the
// baseline the batch's shared-golden design is measured against.
func BenchmarkBatch_Sequential3x(b *testing.B) {
	benchBatch3(b, func(b *testing.B) {
		ctx := context.Background()
		for _, structure := range []merlin.Structure{merlin.RF, merlin.SQ, merlin.L1D} {
			s, err := merlin.Start(ctx, "qsort",
				merlin.WithStructure(structure),
				merlin.WithFaults(300), merlin.WithSeed(1),
				merlin.WithStrategy(merlin.StrategyForked))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
