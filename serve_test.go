package merlin

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// daemon spins up the real campaign service (real pipeline, real cache)
// behind an httptest listener.
func daemon(t *testing.T, opt ServeOptions) *httptest.Server {
	t.Helper()
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return hs
}

func postCampaign(t *testing.T, base string, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, out.Error)
	}
	return out.ID
}

// campaignStatus mirrors the service's status JSON with the report decoded
// into the real Report type.
type campaignStatus struct {
	Status   string          `json:"status"`
	Error    string          `json:"error"`
	Started  time.Time       `json:"started"`
	Finished time.Time       `json:"finished"`
	Report   json.RawMessage `json:"report"`
}

func campaignWait(t *testing.T, base, id string) (campaignStatus, *Report) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st campaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "failed":
			t.Fatalf("campaign %s failed: %s", id, st.Error)
		case "done":
			rep := new(Report)
			if err := json.Unmarshal(st.Report, rep); err != nil {
				t.Fatalf("decoding report: %v", err)
			}
			return st, rep
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return campaignStatus{}, nil
}

// TestDaemonCacheHitOnResubmit is the acceptance-criteria test: the same
// campaign submitted twice hits the artifact cache on the second run,
// produces a bit-identical Dist, and skips the golden run.
func TestDaemonCacheHitOnResubmit(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := daemon(t, ServeOptions{Cache: cache})

	const body = `{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`
	_, first := campaignWait(t, hs.URL, postCampaign(t, hs.URL, body))
	if first.CacheHit {
		t.Fatal("first campaign reported a cache hit on an empty cache")
	}

	_, second := campaignWait(t, hs.URL, postCampaign(t, hs.URL, body))
	if !second.CacheHit {
		t.Fatal("second identical campaign missed the artifact cache: golden run was repeated")
	}
	if second.Dist != first.Dist {
		t.Fatalf("Dist not bit-identical across cache hit:\nfirst  %v\nsecond %v", first.Dist, second.Dist)
	}
	if second.GoldenCycles != first.GoldenCycles || second.AVF != first.AVF ||
		second.Injected != first.Injected || second.FIT != first.FIT {
		t.Fatalf("cached campaign diverged:\nfirst  %+v\nsecond %+v", first, second)
	}

	// The golden-run skip is visible on /statsz too.
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 || stats.Cache.Puts != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / 1 put", stats.Cache)
	}

	// A different fault budget over the same artifact also hits.
	_, third := campaignWait(t, hs.URL, postCampaign(t, hs.URL,
		`{"workload":"sha","structure":"RF","faults":120,"seed":4,"strategy":"replay"}`))
	if !third.CacheHit {
		t.Fatal("campaign with a different fault budget missed the shared artifact")
	}
	if third.InitialFaults != 120 {
		t.Fatalf("third campaign sampled %d faults, want its own 120", third.InitialFaults)
	}
}

// TestDaemonSnapshotHitOnResubmit is the snapshot-cache acceptance test:
// with a warm golden-artifact cache, a repeat campaign skips the
// checkpoint-ladder rebuild entirely — visible as the report's
// SnapshotHit, the inject event's snapshot_hit field, and the /statsz
// snapshot hit counter — while producing a bit-identical Dist.
func TestDaemonSnapshotHitOnResubmit(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := daemon(t, ServeOptions{Cache: cache})

	const body = `{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`
	firstID := postCampaign(t, hs.URL, body)
	_, first := campaignWait(t, hs.URL, firstID)
	if first.SnapshotHit {
		t.Fatal("first campaign reported a snapshot hit on a cold cache")
	}

	secondID := postCampaign(t, hs.URL, body)
	_, second := campaignWait(t, hs.URL, secondID)
	if !second.CacheHit {
		t.Fatal("second campaign missed the artifact cache")
	}
	if !second.SnapshotHit {
		t.Fatal("second identical campaign rebuilt the checkpoint ladder despite a warm snapshot cache")
	}
	if second.Dist != first.Dist {
		t.Fatalf("Dist not bit-identical across snapshot hit:\nfirst  %v\nsecond %v", first.Dist, second.Dist)
	}
	if second.CyclesPerSec <= 0 || first.CyclesPerSec <= 0 {
		t.Errorf("cycles/s not reported: first %v, second %v", first.CyclesPerSec, second.CyclesPerSec)
	}

	// The inject event of the second campaign carries the hit.
	resp, err := http.Get(hs.URL + "/campaigns/" + secondID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var injectSeen, injectHit bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Type == "inject" {
			injectSeen = true
			if ev.SnapshotHit != nil && *ev.SnapshotHit {
				injectHit = true
			}
			if ev.CyclesPerSec <= 0 {
				t.Errorf("inject event missing cycles_per_sec: %+v", ev)
			}
		}
	}
	if !injectSeen {
		t.Fatal("no inject event in the second campaign's stream")
	}
	if !injectHit {
		t.Fatal("second campaign's inject event does not carry snapshot_hit=true")
	}

	// /statsz exports the snapshot cache counters.
	sresp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Snapshots SnapshotCacheStats `json:"snapshots"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshots.Hits < 1 || stats.Snapshots.Misses < 1 || stats.Snapshots.Entries < 1 {
		t.Fatalf("snapshot stats = %+v, want >=1 hit, miss and entry", stats.Snapshots)
	}
	if stats.Snapshots.Bytes <= 0 || stats.Snapshots.Budget <= 0 {
		t.Fatalf("snapshot stats missing byte accounting: %+v", stats.Snapshots)
	}
}

// TestDaemonConcurrentEventStreams runs two campaigns concurrently and
// asserts both event streams carry per-fault outcomes while the campaigns
// overlap in time.
func TestDaemonConcurrentEventStreams(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := daemon(t, ServeOptions{Cache: cache, Shards: 1, WorkersPerShard: 2})

	// Bounded per-campaign workers: a campaign defaulting to all host
	// cores can starve the test harness (and the second submission) long
	// enough for the first campaign to finish before the second starts.
	idA := postCampaign(t, hs.URL, `{"workload":"sha","structure":"RF","faults":400,"seed":2,"workers":2}`)
	idB := postCampaign(t, hs.URL, `{"workload":"qsort","structure":"RF","faults":400,"seed":2,"workers":2}`)

	type stream struct {
		id     string
		faults int
		last   string
		ok     bool
	}
	results := make(chan stream, 2)
	for _, id := range []string{idA, idB} {
		go func(id string) {
			out := stream{id: id}
			resp, err := http.Get(hs.URL + "/campaigns/" + id + "/events")
			if err != nil {
				results <- out
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var ev CampaignEvent
				if json.Unmarshal(sc.Bytes(), &ev) != nil {
					results <- out
					return
				}
				if ev.Type == "fault" {
					out.faults++
					if ev.Outcome == "" || ev.Fault == "" {
						results <- out
						return
					}
				}
				out.last = ev.Type
			}
			out.ok = sc.Err() == nil
			results <- out
		}(id)
	}

	for i := 0; i < 2; i++ {
		r := <-results
		if !r.ok {
			t.Fatalf("stream %s broke (last=%q)", r.id, r.last)
		}
		if r.faults == 0 {
			t.Fatalf("stream %s carried no per-fault outcomes", r.id)
		}
		if r.last != "done" {
			t.Fatalf("stream %s ended on %q, want done", r.id, r.last)
		}
	}

	// Both campaigns genuinely overlapped: each started before the other
	// finished.
	stA, _ := campaignWait(t, hs.URL, idA)
	stB, _ := campaignWait(t, hs.URL, idB)
	if !stA.Started.Before(stB.Finished) || !stB.Started.Before(stA.Finished) {
		t.Fatalf("campaigns did not overlap: A %v..%v, B %v..%v",
			stA.Started, stA.Finished, stB.Started, stB.Finished)
	}
}

// TestDaemonRejectsBadRequests: submission-time validation speaks 400.
func TestDaemonRejectsBadRequests(t *testing.T) {
	hs := daemon(t, ServeOptions{})
	for name, body := range map[string]string{
		"unknown workload":  `{"workload":"nope","structure":"RF"}`,
		"unknown structure": `{"workload":"sha","structure":"ROB"}`,
		"unknown strategy":  `{"workload":"sha","structure":"RF","strategy":"warp"}`,
		"negative faults":   `{"workload":"sha","structure":"RF","faults":-5}`,
		"negative workers":  `{"workload":"sha","structure":"RF","workers":-1}`,
		"negative regs":     `{"workload":"sha","structure":"RF","phys_regs":-64}`,
	} {
		resp, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestDaemonCancelMidInjection is the cancellation acceptance test
// against the real pipeline: DELETE on a mid-injection campaign turns it
// "cancelled", delivers the terminal NDJSON event to an attached
// streamer, and frees the worker shard (observable via /statsz counts as
// the next campaign runs).
func TestDaemonCancelMidInjection(t *testing.T) {
	hs := daemon(t, ServeOptions{Shards: 1, WorkersPerShard: 1})

	// A large replay campaign on one worker: slow enough to catch
	// mid-injection, instantly abandoned once cancelled.
	id := postCampaign(t, hs.URL,
		`{"workload":"sha","structure":"RF","faults":60000,"seed":1,"workers":1}`)

	// Stream events until the first per-fault outcome proves the campaign
	// is mid-injection, then DELETE it; keep draining to catch the
	// terminal event.
	resp, err := http.Get(hs.URL + "/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	deleted := false
	last := ""
	for sc.Scan() {
		var ev CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		last = ev.Type
		if ev.Type == "fault" && !deleted {
			deleted = true
			req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/campaigns/"+id, nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("DELETE mid-injection: status %d, want 200", dresp.StatusCode)
			}
		}
	}
	if !deleted {
		t.Fatal("stream ended before any fault event; campaign never reached injection")
	}
	if last != "cancelled" {
		t.Fatalf("stream ended on %q, want terminal cancelled event", last)
	}

	// Status is terminal cancelled, retaining the partial report (the
	// classified-so-far distribution plus the Cancelled count).
	sresp, err := http.Get(hs.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st campaignStatus
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "cancelled" {
		t.Fatalf("status = %q, want cancelled", st.Status)
	}
	partial := new(Report)
	if err := json.Unmarshal(st.Report, partial); err != nil {
		t.Fatalf("cancelled campaign lost its partial report: %v", err)
	}
	if partial.Cancelled == 0 {
		t.Fatalf("partial report has no Cancelled count: %+v", partial)
	}

	// The worker shard is freed: a follow-up campaign on the same single
	// shard runs to completion, and /statsz shows nothing left running.
	_, rep := campaignWait(t, hs.URL, postCampaign(t, hs.URL,
		`{"workload":"sha","structure":"RF","faults":100,"seed":2,"strategy":"forked"}`))
	if rep.Dist.Total() != 100 {
		t.Fatalf("post-cancel campaign classified %d of 100", rep.Dist.Total())
	}
	statsResp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		Campaigns map[string]int `json:"campaigns"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Campaigns["running"] != 0 || stats.Campaigns["cancelled"] != 1 || stats.Campaigns["done"] != 1 {
		t.Fatalf("statsz campaigns = %v, want 0 running / 1 cancelled / 1 done", stats.Campaigns)
	}
}

// TestDaemonRejectsStrategyCheckpointConflict: the v2 validation surfaces
// through the wire API — an explicit non-checkpointed strategy combined
// with checkpoints is a 400 at submission.
func TestDaemonRejectsStrategyCheckpointConflict(t *testing.T) {
	hs := daemon(t, ServeOptions{})
	resp, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(
		`{"workload":"sha","structure":"RF","strategy":"replay","checkpoints":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting strategy/checkpoints: status %d, want 400", resp.StatusCode)
	}

	// Checkpoints alone stays valid (implies the checkpointed strategy).
	resp2, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(
		`{"workload":"sha","structure":"RF","faults":50,"checkpoints":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("checkpoints-only submit: status %d, want 202", resp2.StatusCode)
	}
}

// TestDaemonBatchEndToEnd is the daemon-level batch acceptance test: POST
// /batches runs a real 3-structure batch over one shared golden run,
// streams structure-tagged NDJSON events, and serves a BatchReport whose
// per-structure entries match standalone campaigns.
func TestDaemonBatchEndToEnd(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := daemon(t, ServeOptions{Cache: cache})

	body := `{"workload":"sha","structures":["RF","SQ","L1D"],"faults":200,"seed":11,"strategy":"forked"}`
	resp, err := http.Post(hs.URL+"/batches", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var posted struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&posted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /batches = %d: %s", resp.StatusCode, posted.Error)
	}

	// Wait for the batch report.
	var rep *BatchReport
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(hs.URL + "/batches/" + posted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st campaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "failed" {
			t.Fatalf("batch failed: %s", st.Error)
		}
		if st.Status == "done" {
			rep = new(BatchReport)
			if err := json.Unmarshal(st.Report, rep); err != nil {
				t.Fatalf("decoding batch report: %v", err)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep == nil {
		t.Fatal("batch did not finish")
	}

	if rep.GoldenRuns != 1 {
		t.Fatalf("batch performed %d golden runs, want exactly 1", rep.GoldenRuns)
	}
	if len(rep.Reports) != 3 {
		t.Fatalf("batch report carries %d structures, want 3", len(rep.Reports))
	}

	// Per-structure results match standalone campaigns over the same knobs.
	for i, structure := range []string{"RF", "SQ", "L1D"} {
		body := `{"workload":"sha","structure":"` + structure + `","faults":200,"seed":11,"strategy":"forked"}`
		_, solo := campaignWait(t, hs.URL, postCampaign(t, hs.URL, body))
		got := rep.Reports[i]
		if got.Dist != solo.Dist || got.AVF != solo.AVF || got.FIT != solo.FIT ||
			got.Injected != solo.Injected || got.InitialFaults != solo.InitialFaults {
			t.Fatalf("%s: batch member diverged from standalone campaign:\nbatch      %+v\nstandalone %+v",
				structure, got, solo)
		}
	}

	// The event stream is structure-tagged and ends with the batch summary
	// before the terminal done event.
	resp, err = http.Get(hs.URL + "/batches/" + posted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	perStructure := map[string]int{}
	var sawBatch bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "fault", "inject":
			perStructure[ev.Structure]++
		case "batch":
			sawBatch = true
		}
	}
	for _, s := range []string{"RF", "SQ", "L1D"} {
		if perStructure[s] == 0 {
			t.Fatalf("event stream carried no %s-tagged events: %v", s, perStructure)
		}
	}
	if !sawBatch {
		t.Fatal("event stream carried no batch summary event")
	}
}

// TestDaemonBatchCancelWholeBatch: DELETE /batches/{id} cancels every
// structure of a running batch — the record turns "cancelled" and frees
// its worker.
func TestDaemonBatchCancelWholeBatch(t *testing.T) {
	hs := daemon(t, ServeOptions{})

	// Big enough to still be mid-injection when the DELETE lands.
	body := `{"workload":"sha","structures":["RF","SQ","L1D"],"faults":60000,"seed":3,"workers":1}`
	resp, err := http.Post(hs.URL+"/batches", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var posted struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&posted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Wait until it is actually running (status flips from queued).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(hs.URL + "/batches/" + posted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st campaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "running" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/batches/"+posted.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /batches/{id} = %d, want 200", dresp.StatusCode)
	}

	for time.Now().Before(deadline) {
		resp, err := http.Get(hs.URL + "/batches/" + posted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st campaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "cancelled" {
			return
		}
		if st.Status == "done" || st.Status == "failed" {
			t.Fatalf("batch reached %q, want cancelled", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("batch never reached cancelled")
}
