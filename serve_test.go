package merlin

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// daemon spins up the real campaign service (real pipeline, real cache)
// behind an httptest listener.
func daemon(t *testing.T, opt ServeOptions) *httptest.Server {
	t.Helper()
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return hs
}

func postCampaign(t *testing.T, base string, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, out.Error)
	}
	return out.ID
}

// campaignStatus mirrors the service's status JSON with the report decoded
// into the real Report type.
type campaignStatus struct {
	Status   string          `json:"status"`
	Error    string          `json:"error"`
	Started  time.Time       `json:"started"`
	Finished time.Time       `json:"finished"`
	Report   json.RawMessage `json:"report"`
}

func campaignWait(t *testing.T, base, id string) (campaignStatus, *Report) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st campaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "failed":
			t.Fatalf("campaign %s failed: %s", id, st.Error)
		case "done":
			rep := new(Report)
			if err := json.Unmarshal(st.Report, rep); err != nil {
				t.Fatalf("decoding report: %v", err)
			}
			return st, rep
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return campaignStatus{}, nil
}

// TestDaemonCacheHitOnResubmit is the acceptance-criteria test: the same
// campaign submitted twice hits the artifact cache on the second run,
// produces a bit-identical Dist, and skips the golden run.
func TestDaemonCacheHitOnResubmit(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := daemon(t, ServeOptions{Cache: cache})

	const body = `{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`
	_, first := campaignWait(t, hs.URL, postCampaign(t, hs.URL, body))
	if first.CacheHit {
		t.Fatal("first campaign reported a cache hit on an empty cache")
	}

	_, second := campaignWait(t, hs.URL, postCampaign(t, hs.URL, body))
	if !second.CacheHit {
		t.Fatal("second identical campaign missed the artifact cache: golden run was repeated")
	}
	if second.Dist != first.Dist {
		t.Fatalf("Dist not bit-identical across cache hit:\nfirst  %v\nsecond %v", first.Dist, second.Dist)
	}
	if second.GoldenCycles != first.GoldenCycles || second.AVF != first.AVF ||
		second.Injected != first.Injected || second.FIT != first.FIT {
		t.Fatalf("cached campaign diverged:\nfirst  %+v\nsecond %+v", first, second)
	}

	// The golden-run skip is visible on /statsz too.
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 || stats.Cache.Puts != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / 1 put", stats.Cache)
	}

	// A different fault budget over the same artifact also hits.
	_, third := campaignWait(t, hs.URL, postCampaign(t, hs.URL,
		`{"workload":"sha","structure":"RF","faults":120,"seed":4,"strategy":"replay"}`))
	if !third.CacheHit {
		t.Fatal("campaign with a different fault budget missed the shared artifact")
	}
	if third.InitialFaults != 120 {
		t.Fatalf("third campaign sampled %d faults, want its own 120", third.InitialFaults)
	}
}

// TestDaemonConcurrentEventStreams runs two campaigns concurrently and
// asserts both event streams carry per-fault outcomes while the campaigns
// overlap in time.
func TestDaemonConcurrentEventStreams(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := daemon(t, ServeOptions{Cache: cache, Shards: 1, WorkersPerShard: 2})

	idA := postCampaign(t, hs.URL, `{"workload":"sha","structure":"RF","faults":400,"seed":2}`)
	idB := postCampaign(t, hs.URL, `{"workload":"qsort","structure":"RF","faults":400,"seed":2}`)

	type stream struct {
		id     string
		faults int
		last   string
		ok     bool
	}
	results := make(chan stream, 2)
	for _, id := range []string{idA, idB} {
		go func(id string) {
			out := stream{id: id}
			resp, err := http.Get(hs.URL + "/campaigns/" + id + "/events")
			if err != nil {
				results <- out
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var ev CampaignEvent
				if json.Unmarshal(sc.Bytes(), &ev) != nil {
					results <- out
					return
				}
				if ev.Type == "fault" {
					out.faults++
					if ev.Outcome == "" || ev.Fault == "" {
						results <- out
						return
					}
				}
				out.last = ev.Type
			}
			out.ok = sc.Err() == nil
			results <- out
		}(id)
	}

	for i := 0; i < 2; i++ {
		r := <-results
		if !r.ok {
			t.Fatalf("stream %s broke (last=%q)", r.id, r.last)
		}
		if r.faults == 0 {
			t.Fatalf("stream %s carried no per-fault outcomes", r.id)
		}
		if r.last != "done" {
			t.Fatalf("stream %s ended on %q, want done", r.id, r.last)
		}
	}

	// Both campaigns genuinely overlapped: each started before the other
	// finished.
	stA, _ := campaignWait(t, hs.URL, idA)
	stB, _ := campaignWait(t, hs.URL, idB)
	if !stA.Started.Before(stB.Finished) || !stB.Started.Before(stA.Finished) {
		t.Fatalf("campaigns did not overlap: A %v..%v, B %v..%v",
			stA.Started, stA.Finished, stB.Started, stB.Finished)
	}
}

// TestDaemonRejectsBadRequests: submission-time validation speaks 400.
func TestDaemonRejectsBadRequests(t *testing.T) {
	hs := daemon(t, ServeOptions{})
	for name, body := range map[string]string{
		"unknown workload":  `{"workload":"nope","structure":"RF"}`,
		"unknown structure": `{"workload":"sha","structure":"ROB"}`,
		"unknown strategy":  `{"workload":"sha","structure":"RF","strategy":"warp"}`,
		"negative faults":   `{"workload":"sha","structure":"RF","faults":-5}`,
		"negative workers":  `{"workload":"sha","structure":"RF","workers":-1}`,
		"negative regs":     `{"workload":"sha","structure":"RF","phys_regs":-64}`,
	} {
		resp, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
