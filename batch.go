package merlin

// This file is the batch API: one workload evaluated across several
// structures over a single shared golden run. The paper's evaluation
// (§4.4) reports every workload per structure — RF, SQ and L1D columns of
// the same campaign — and the structures share everything the fault lists
// do not depend on: the golden run, its artifact-cache entry, the clone
// pool and the checkpoint-snapshot ladder. StartBatch bundles them so the
// expensive shared work is paid once instead of once per structure.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"merlin/internal/campaign"
	reduction "merlin/internal/merlin"
	"merlin/internal/stats"
)

// VarianceReport is the §4.4.5 statistical summary of one structure's
// campaign: the AVF estimator's mean and the baseline-versus-MeRLiN
// variances, with their orders of magnitude below the mean.
type VarianceReport = stats.Report

// Batch is one multi-structure campaign over a shared golden run: every
// structure in Structures gets its own Session (own fault list, own
// reduction, own report), but phase 1 runs once — a single fault-free run
// traces all structures, is cached under one artifact, and its checkpoint
// ladder and clone pool are shared by every per-structure injection.
//
// Like a Session, a Batch runs a single campaign and its methods must not
// be called concurrently. The per-structure injection phases run
// sequentially (each already parallelizes across all workers); they are
// fanned out over the same scheduler machinery a standalone Session uses,
// so per-structure outcomes are bit-identical to standalone runs with the
// same configuration and seed.
type Batch struct {
	cfg        Config // shared knobs; Structure is set per session
	structures []Structure
	emit       func(Progress)

	runner   *campaign.Runner
	sessions []*Session // one per structure, sharing the golden run
	cacheHit bool
	cacheErr error
}

// StartBatch validates workload and options and returns a Batch ready to
// run. Targets come from WithStructures (default: all structures, in
// AllStructures order); every other option is shared by all per-structure
// campaigns exactly as it would configure a standalone Session — in
// particular WithSeed, so each structure's fault list is bit-identical to
// the standalone session's. WithStructure is meaningless here and is
// ignored in favor of the batch target list.
//
// When no WithSnapshotCache is given, the batch attaches a private
// snapshot cache so its per-structure injections share one checkpoint
// ladder instead of each rebuilding it.
func StartBatch(ctx context.Context, workload string, opts ...Option) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc, err := buildSessionConfig(workload, opts)
	if err != nil {
		return nil, err
	}
	structures := sc.structures
	if len(structures) == 0 {
		structures = AllStructures()
	}
	cfg := sc.cfg
	if cfg.Snapshots == nil {
		cfg.Snapshots = NewSnapshotCache(0)
	}
	return &Batch{cfg: cfg, structures: structures, emit: sc.progress}, nil
}

// Structures returns the batch's injection targets in report order.
func (b *Batch) Structures() []Structure {
	return append([]Structure(nil), b.structures...)
}

// Sessions exposes the per-structure Sessions (in Structures order) once
// Preprocess has run; nil before. They share the batch's golden run, and
// driving one directly (e.g. Session.Baseline for a per-structure
// comprehensive campaign) never repeats it.
func (b *Batch) Sessions() []*Session { return b.sessions }

// emitBatch reports one batch-level progress event (no structure tag: it
// spans every structure of the batch).
func (b *Batch) emitBatch(p Progress) {
	if b.emit != nil {
		b.emit(p)
	}
}

// Preprocess runs the batch's phase 1: one golden run tracing every
// target structure (or one artifact-cache load of the same), from which
// the per-structure Sessions are built. It memoizes — a second call is a
// no-op — and every per-structure phase that needs it runs it
// automatically.
func (b *Batch) Preprocess(ctx context.Context) error {
	if b.sessions != nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.emitBatch(Progress{Kind: ProgressPhaseStart, Phase: PhasePreprocess})
	arts, err := preprocessStructures(b.cfg, b.structures)
	if err != nil {
		return err
	}
	b.runner = arts[0].Runner
	b.cacheHit = arts[0].CacheHit
	b.cacheErr = arts[0].CacheErr
	b.sessions = make([]*Session, len(arts))
	for i, a := range arts {
		b.sessions[i] = &Session{cfg: a.Config, emit: b.emit, art: a}
	}
	b.emitBatch(Progress{
		Kind: ProgressPhaseDone, Phase: PhasePreprocess,
		CacheHit: b.cacheHit, CacheErr: b.cacheErr,
		Msg: b.preprocessSummary(arts),
	})
	return nil
}

func (b *Batch) preprocessSummary(arts []*Artifacts) string {
	src := "golden run simulated once for"
	switch {
	case b.cacheHit:
		src = "golden run served from artifact cache for"
	case b.cfg.Cache != nil:
		src = "golden run simulated once, cached, for"
	}
	parts := make([]string, len(arts))
	for i, a := range arts {
		parts[i] = fmt.Sprintf("%v (%d intervals, %d faults)",
			a.Config.Structure, len(a.Analysis.Intervals), len(a.Faults))
	}
	if b.cacheErr != nil {
		src = "(cache write failed: " + b.cacheErr.Error() + ") " + src
	}
	return fmt.Sprintf("%s %d structures: %d cycles; %s",
		src, len(arts), arts[0].Golden.Result.Cycles, strings.Join(parts, ", "))
}

// Run executes the whole batch: the shared Preprocess, then every
// structure's Reduce and Inject in Structures order, and aggregates the
// per-structure reports. Injection observes ctx between faults; on
// cancellation Run returns ctx.Err() together with the partial
// *BatchReport — finished structures carry complete reports, the
// structure under injection a partial one (Report.Cancelled > 0), and the
// rest none.
func (b *Batch) Run(ctx context.Context) (*BatchReport, error) {
	if err := b.Preprocess(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	rep := &BatchReport{
		Workload:     b.cfg.Workload,
		Structures:   b.Structures(),
		GoldenCycles: b.sessions[0].art.Golden.Result.Cycles,
		CacheHit:     b.cacheHit,
	}
	var runErr error
	for _, s := range b.sessions {
		r, err := s.Inject(ctx)
		if r != nil {
			rep.Reports = append(rep.Reports, r)
		}
		if err != nil {
			runErr = err
			break
		}
	}
	rep.GoldenRuns = b.runner.GoldenRuns()
	rep.Wall = time.Since(start)
	b.aggregate(rep)
	if runErr == nil {
		b.emitBatch(Progress{Kind: ProgressPhaseDone, Phase: PhaseBatch, Msg: rep.summary()})
	}
	return rep, runErr
}

// aggregate folds the per-structure reports into the batch totals and the
// §4.4.5 variance bounds. Only complete reports contribute to the totals;
// a cancelled structure's partial report (raw, unextrapolated
// distribution) stays visible in Reports but would skew cross-structure
// sums.
func (b *Batch) aggregate(rep *BatchReport) {
	rep.Variance = make([]VarianceReport, len(rep.Reports))
	var avfBits float64
	for i, r := range rep.Reports {
		// The structure geometry comes from the session's analysis (no
		// need to build a throwaway core for it).
		a := b.sessions[i].art.Analysis
		bits := a.Entries * a.EntryBytes * 8
		if r.Cancelled > 0 {
			continue
		}
		rep.TotalBits += bits
		avfBits += r.AVF * float64(bits)
		rep.FIT += r.FIT
		rep.ACELikeFIT += r.ACELikeFIT
		rep.Variance[i] = b.varianceFor(i, r)
	}
	if rep.TotalBits > 0 {
		rep.AVF = avfBits / float64(rep.TotalBits)
	}
}

// varianceFor builds the §4.4.5 binomial model of structure i's campaign
// from its reduction groups and the representatives' observed outcomes:
// group sizes s_i, empirical per-group non-masking probabilities p_i, F
// the initial list size. The RepOutcomes-to-Groups alignment is
// Reduction.ExtrapolateGroups' — the same walk Extrapolate classifies
// with. A model stats.Campaign.Validate rejects (e.g. a zero-fault
// campaign) yields the zero report rather than NaN.
func (b *Batch) varianceFor(i int, r *Report) VarianceReport {
	red := b.sessions[i].art.Red
	sizes := make([]int, 0, len(red.Groups))
	ps := make([]float64, 0, len(red.Groups))
	red.ExtrapolateGroups(r.RepOutcomes, func(g *reduction.Group, d Dist) {
		nonMasked := d.Total() - d[Masked]
		sizes = append(sizes, len(g.Members))
		ps = append(ps, float64(nonMasked)/float64(len(g.Members)))
	})
	c := stats.Campaign{F: len(b.sessions[i].art.Faults), Sizes: sizes, Ps: ps}
	if err := c.Validate(); err != nil {
		return VarianceReport{}
	}
	return c.Analyze()
}

// BatchReport aggregates one batch campaign: the per-structure MeRLiN
// reports (each bit-identical to a standalone session's), cross-structure
// AVF/FIT totals, and the §4.4.5 variance bounds per structure.
type BatchReport struct {
	// Workload and Structures identify the batch; Reports (and Variance)
	// are in Structures order. On cancellation Reports may be shorter
	// than Structures: structures after the cancelled one never ran.
	Workload   string
	Structures []Structure
	// GoldenCycles is the shared fault-free run length in cycles.
	GoldenCycles uint64
	// GoldenRuns counts the golden simulations the batch performed: 1
	// cold, 0 when the artifact cache served it. It can never exceed 1 —
	// the batch's reason to exist.
	GoldenRuns int64
	// CacheHit reports that the shared golden run came from the artifact
	// cache.
	CacheHit bool
	// Reports are the per-structure campaign reports. A cancelled batch's
	// last entry may be partial (Report.Cancelled > 0).
	Reports []*Report
	// Variance holds the §4.4.5 statistical summary per structure
	// (parallel to Reports; the zero value for partial reports).
	Variance []VarianceReport
	// TotalBits sums the evaluated structures' storage bits; AVF is the
	// bit-weighted cross-structure vulnerability and FIT the summed
	// failure rate (FIT rates of independent structures add). ACELikeFIT
	// is the summed analysis-only upper bound. Partial reports are
	// excluded from all four.
	TotalBits  int
	AVF        float64
	FIT        float64
	ACELikeFIT float64
	// Wall is the whole batch's injection wall-clock (the shared golden
	// run is timed by Preprocess, not here).
	Wall time.Duration
}

// summary is the one-line batch completion message of the progress
// stream.
func (r *BatchReport) summary() string {
	return fmt.Sprintf("batch of %d structures done in %v: AVF %.4f, FIT %.3f over %d bits (golden runs: %d)",
		len(r.Reports), r.Wall.Round(time.Millisecond), r.AVF, r.FIT, r.TotalBits, r.GoldenRuns)
}

// String renders the per-structure reports followed by the batch totals.
func (r *BatchReport) String() string {
	var sb strings.Builder
	for _, rep := range r.Reports {
		fmt.Fprintf(&sb, "%v\n", rep)
	}
	fmt.Fprintf(&sb, "batch %s: AVF %.4f (bit-weighted)  FIT %.3f (ACE-like bound %.3f) over %d bits, one golden run shared by %d structures",
		r.Workload, r.AVF, r.FIT, r.ACELikeFIT, r.TotalBits, len(r.Reports))
	return sb.String()
}
