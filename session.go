package merlin

// This file is the v2 public API: merlin.Start builds a Session from
// functional options, and the Session exposes the pipeline phases as
// context-aware, cancellable methods with a unified typed progress stream.
// The flat Config struct and the package-level Run/RunBaseline/Preprocess
// entry points remain as thin deprecated wrappers.

import (
	"context"
	"fmt"
	"time"

	"merlin/internal/cpu"
	"merlin/internal/workloads"
)

// Option configures a Session at Start time. Options replace the v1
// Config knob-struct: each knob is an explicit, validated setter, and
// conflicting combinations fail Start instead of being silently patched.
type Option func(*sessionConfig) error

// sessionConfig accumulates options before validation. strategySet
// records whether WithStrategy was given explicitly, which is what lets
// Start distinguish "WithCheckpoints implies checkpointed" from
// "WithStrategy(replay) + WithCheckpoints conflict". structures is the
// batch target list of WithStructures, consumed by StartBatch and
// rejected by Start.
type sessionConfig struct {
	cfg         Config
	strategySet bool
	structures  []Structure
	progress    func(Progress)
}

// WithStructure selects the injection target (default RF).
func WithStructure(s Structure) Option {
	return func(o *sessionConfig) error {
		o.cfg.Structure = s
		return nil
	}
}

// WithStructures selects the injection targets of a batch campaign, in
// report order; duplicates are dropped. It is a StartBatch option — Start
// runs a single-structure campaign and rejects it (use WithStructure
// there). StartBatch without WithStructures targets all structures.
func WithStructures(ss ...Structure) Option {
	return func(o *sessionConfig) error {
		if len(ss) == 0 {
			return fmt.Errorf("merlin: WithStructures: want at least one structure")
		}
		var out []Structure
		seen := [NumStructures]bool{}
		for _, s := range ss {
			if s >= NumStructures {
				return fmt.Errorf("merlin: WithStructures: unknown structure %d", s)
			}
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		o.structures = out
		return nil
	}
}

// WithCPU sets the core configuration (default: the paper's Table 1
// baseline).
func WithCPU(c cpu.Config) Option {
	return func(o *sessionConfig) error {
		o.cfg.CPU = c
		return nil
	}
}

// WithFaults sets the initial statistical fault list size directly;
// without it the size derives from the sampling parameters.
func WithFaults(n int) Option {
	return func(o *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("merlin: WithFaults(%d): want >= 0", n)
		}
		o.cfg.Faults = n
		return nil
	}
}

// WithSampling sets the statistical confidence and error margin that size
// the fault list when WithFaults is not given (defaults 0.998 / 0.0063,
// the paper's 60K-fault setup).
func WithSampling(confidence, errorMargin float64) Option {
	return func(o *sessionConfig) error {
		o.cfg.Confidence = confidence
		o.cfg.ErrorMargin = errorMargin
		return nil
	}
}

// WithSeed drives fault sampling (and nothing else; the simulator is
// deterministic).
func WithSeed(seed int64) Option {
	return func(o *sessionConfig) error {
		o.cfg.Seed = seed
		return nil
	}
}

// WithRepsPerGroup injects n representatives per final group instead of
// the paper's 1 (accuracy/cost ablation).
func WithRepsPerGroup(n int) Option {
	return func(o *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("merlin: WithRepsPerGroup(%d): want >= 1", n)
		}
		o.cfg.RepsPerGroup = n
		return nil
	}
}

// WithoutByteGrouping disables step 2 of the grouping algorithm
// (ablation).
func WithoutByteGrouping() Option {
	return func(o *sessionConfig) error {
		o.cfg.DisableByteGrouping = true
		return nil
	}
}

// WithWorkers bounds injection parallelism (default: all host cores).
func WithWorkers(n int) Option {
	return func(o *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("merlin: WithWorkers(%d): want >= 0 (0 = all host cores)", n)
		}
		o.cfg.Workers = n
		return nil
	}
}

// WithStrategy selects the injection scheduler explicitly. All strategies
// classify every fault identically; they differ only in how much of the
// pre-fault prefix is re-simulated. Combining a non-checkpointed strategy
// with WithCheckpoints is a Start-time error.
func WithStrategy(s Strategy) Option {
	return func(o *sessionConfig) error {
		switch s {
		case StrategyReplay, StrategyCheckpointed, StrategyForked:
		default:
			return fmt.Errorf("merlin: WithStrategy(%v): unknown strategy", s)
		}
		o.cfg.Strategy = s
		o.strategySet = true
		return nil
	}
}

// WithCheckpoints sets the snapshot count of the checkpointed scheduler
// and — unless WithStrategy was given — implies StrategyCheckpointed.
// This replaces the v1 behaviour of Config.Checkpoints silently flipping
// the strategy: under the Session API the implication is explicit, and a
// conflicting WithStrategy(StrategyReplay) (or Forked) fails Start.
func WithCheckpoints(k int) Option {
	return func(o *sessionConfig) error {
		if k <= 0 {
			return fmt.Errorf("merlin: WithCheckpoints(%d): want > 0", k)
		}
		o.cfg.Checkpoints = k
		return nil
	}
}

// WithCache attaches a golden-run artifact cache: Preprocess is served
// from it when a previous campaign already profiled the same (workload,
// core config, structure). Open one with OpenCache.
func WithCache(c *Cache) Option {
	return func(o *sessionConfig) error {
		o.cfg.Cache = c
		return nil
	}
}

// WithSnapshotCache attaches a shared checkpoint-ladder cache: the
// checkpointed and forked schedulers serve their frozen machine snapshots
// from it instead of rebuilding them, so concurrent and repeat campaigns
// over one (workload, CPU config, golden cycles) pay the ladder build
// once. Create one with NewSnapshotCache; the daemon wires a process-wide
// instance into every campaign.
func WithSnapshotCache(c *SnapshotCache) Option {
	return func(o *sessionConfig) error {
		o.cfg.Snapshots = c
		return nil
	}
}

// WithStaticPrune enables the guestflow static pre-pruner: register-file
// fault sites in statically must-dead windows are classified masked
// before Reduce, skipping their dynamic interval lookups. Every pruned
// fault is cross-verified against the dynamic analysis — a disagreement
// fails Reduce loudly — so reports are bit-identical to unpruned runs.
// Non-RF structures ignore the option.
func WithStaticPrune() Option {
	return func(o *sessionConfig) error {
		o.cfg.StaticPrune = true
		return nil
	}
}

// WithProgress subscribes fn to the Session's typed progress stream. See
// Progress for the concurrency contract.
func WithProgress(fn func(Progress)) Option {
	return func(o *sessionConfig) error {
		o.progress = fn
		return nil
	}
}

// Session is one MeRLiN campaign as a first-class object: Start validates
// the configuration, and the phase methods run the pipeline under a
// caller-supplied context, so a campaign can be cancelled or deadlined
// between (and, for injection, within) phases. Phases are idempotent —
// Preprocess and Reduce memoize their products, and Inject/Baseline
// auto-run any phase not yet executed — so Run(ctx) and an explicit
// Preprocess/Reduce/Inject sequence are interchangeable.
//
// A Session runs a single campaign; its methods must not be called
// concurrently with each other. (The injection phase parallelizes
// internally regardless.)
type Session struct {
	cfg  Config
	emit func(Progress)

	art *Artifacts // phase products; art.Red memoizes the reduction
}

// buildSessionConfig applies the options, resolves the checkpoint/strategy
// implication, verifies the workload exists, and returns the validated,
// defaults-applied configuration. Start and StartBatch share it.
func buildSessionConfig(workload string, opts []Option) (sessionConfig, error) {
	var sc sessionConfig
	sc.cfg.Workload = workload
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&sc); err != nil {
			return sc, err
		}
	}
	if sc.cfg.Checkpoints > 0 {
		if sc.strategySet && sc.cfg.Strategy != StrategyCheckpointed {
			return sc, fmt.Errorf(
				"merlin: WithCheckpoints(%d) implies StrategyCheckpointed, conflicting with WithStrategy(%v)",
				sc.cfg.Checkpoints, sc.cfg.Strategy)
		}
		sc.cfg.Strategy = StrategyCheckpointed
	}
	if _, err := workloads.Get(workload); err != nil {
		return sc, err
	}
	sc.cfg = sc.cfg.fillDefaults()
	if err := sc.cfg.validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// Start validates workload and options and returns a Session ready to
// run. No simulation happens here — Start is cheap enough to double as a
// request validator (the campaign daemon uses it that way). ctx only
// gates Start itself; each phase method takes its own context.
func Start(ctx context.Context, workload string, opts ...Option) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc, err := buildSessionConfig(workload, opts)
	if err != nil {
		return nil, err
	}
	if len(sc.structures) > 0 {
		return nil, fmt.Errorf("merlin: WithStructures is a batch option; use StartBatch (single campaigns take WithStructure)")
	}
	return &Session{cfg: sc.cfg, emit: sc.progress}, nil
}

// Config returns the session's configuration after defaults were applied.
func (s *Session) Config() Config { return s.cfg }

// Artifacts exposes the preprocessing products (golden run, ACE-like
// analysis, fault list); nil until Preprocess has run. It is the escape
// hatch for studies that drive the Runner directly (e.g. injecting the
// full post-ACE list as ground truth).
func (s *Session) Artifacts() *Artifacts { return s.art }

func (s *Session) emitEvent(p Progress) {
	if s.emit != nil {
		p.Structure = s.cfg.Structure.String()
		s.emit(p)
	}
}

// faultEmitter adapts the progress stream to the campaign scheduler's
// per-fault hook; nil when no subscriber is attached.
func (s *Session) faultEmitter(phase Phase) func(int, Fault, Outcome) {
	if s.emit == nil {
		return nil
	}
	return func(idx int, f Fault, o Outcome) {
		s.emitEvent(Progress{Kind: ProgressFault, Phase: phase, Index: idx, Fault: f, Outcome: o})
	}
}

// Preprocess runs phase 1 (golden run + ACE-like analysis + initial fault
// list), serving it from the artifact cache when one is attached and warm.
// It memoizes: a second call is a no-op. The context gates phase entry;
// the golden run itself is not interruptible (it is bounded by the
// runner's golden budget and amortized by the cache).
func (s *Session) Preprocess(ctx context.Context) error {
	if s.art != nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.emitEvent(Progress{Kind: ProgressPhaseStart, Phase: PhasePreprocess})
	a, err := Preprocess(s.cfg)
	if err != nil {
		return err
	}
	s.art = a
	s.emitEvent(Progress{
		Kind: ProgressPhaseDone, Phase: PhasePreprocess,
		CacheHit: a.CacheHit, CacheErr: a.CacheErr,
		Msg: preprocessSummary(a),
	})
	return nil
}

func preprocessSummary(a *Artifacts) string {
	src := "golden run simulated (no cache)"
	switch {
	case a.CacheHit:
		src = "golden run served from artifact cache"
	case a.Config.Cache != nil:
		src = "golden run simulated and cached"
	}
	if a.CacheErr != nil {
		src += " (cache write failed: " + a.CacheErr.Error() + ")"
	}
	return fmt.Sprintf("%s: %d cycles, %d vulnerable intervals, %d faults sampled",
		src, a.Golden.Result.Cycles, len(a.Analysis.Intervals), len(a.Faults))
}

// Reduce runs phase 2 (ACE-like pruning + two-step grouping), memoizing
// the reduction. It requires Preprocess to have run.
func (s *Session) Reduce() (*Reduction, error) {
	if s.art == nil {
		return nil, fmt.Errorf("merlin: Reduce before Preprocess (call Preprocess or Run first)")
	}
	if s.art.Red != nil {
		return s.art.Red, nil
	}
	s.emitEvent(Progress{Kind: ProgressPhaseStart, Phase: PhaseReduce})
	if s.cfg.StaticPrune {
		if err := s.art.staticPrune(); err != nil {
			return nil, err
		}
	}
	red := s.art.Reduce()
	msg := fmt.Sprintf("%d faults -> %d ACE-masked -> %d groups -> %d representatives",
		len(s.art.Faults), red.ACEMasked, len(red.Groups), red.ReducedCount())
	if s.art.StaticPruned > 0 {
		msg += fmt.Sprintf(" (%d statically pre-pruned)", s.art.StaticPruned)
	}
	s.emitEvent(Progress{
		Kind: ProgressPhaseDone, Phase: PhaseReduce,
		StaticPruned: s.art.StaticPruned,
		Msg:          msg,
	})
	return red, nil
}

// Inject runs phase 3: the representatives of the reduced fault list are
// injected and their outcomes extrapolated over the full initial list.
// Earlier phases run automatically if they have not yet.
//
// Injection observes ctx between faults. On cancellation Inject returns
// ctx.Err() together with a partial *Report: Dist then holds the raw
// (unextrapolated) distribution of the representatives classified before
// the cut and Cancelled counts the representatives never injected.
func (s *Session) Inject(ctx context.Context) (*Report, error) {
	if err := s.Preprocess(ctx); err != nil {
		return nil, err
	}
	if _, err := s.Reduce(); err != nil {
		return nil, err
	}
	s.emitEvent(Progress{Kind: ProgressPhaseStart, Phase: PhaseInject})
	rep, err := s.art.inject(ctx, s.faultEmitter(PhaseInject))
	if err != nil {
		return rep, err
	}
	s.emitEvent(Progress{
		Kind: ProgressPhaseDone, Phase: PhaseInject,
		SnapshotHit: rep.SnapshotHit, CyclesPerSec: rep.CyclesPerSec,
		Msg: fmt.Sprintf("injected %d representatives in %v (%s cycles/s, %d clones%s): %v",
			rep.Injected, rep.Wall.Round(time.Millisecond),
			siCount(rep.CyclesPerSec), rep.Clones, snapshotNote(rep.SnapshotHit), rep.Dist),
	})
	return rep, nil
}

// siCount renders a rate with an SI suffix for the phase summaries.
func siCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// snapshotNote annotates a phase summary when the checkpoint ladder was
// served from the shared snapshot cache.
func snapshotNote(hit bool) string {
	if hit {
		return ", snapshot cache hit"
	}
	return ""
}

// Run executes the full MeRLiN pipeline (Preprocess, Reduce, Inject) and
// returns the campaign report. It shares Inject's cancellation contract.
func (s *Session) Run(ctx context.Context) (*Report, error) {
	return s.Inject(ctx)
}

// Baseline injects the entire initial fault list (the comprehensive
// campaign MeRLiN is compared against), reusing this session's
// preprocessing products — unlike the deprecated RunBaseline, it does not
// repeat the golden run after Run. It shares Inject's cancellation
// contract: on cancellation the partial *BaselineReport is returned
// together with ctx.Err().
func (s *Session) Baseline(ctx context.Context) (*BaselineReport, error) {
	if err := s.Preprocess(ctx); err != nil {
		return nil, err
	}
	s.emitEvent(Progress{Kind: ProgressPhaseStart, Phase: PhaseBaseline})
	rep, err := s.art.baseline(ctx, s.faultEmitter(PhaseBaseline))
	if err != nil {
		return rep, err
	}
	s.emitEvent(Progress{
		Kind: ProgressPhaseDone, Phase: PhaseBaseline,
		SnapshotHit: rep.SnapshotHit, CyclesPerSec: rep.CyclesPerSec,
		Msg: fmt.Sprintf("injected all %d faults in %v (%s cycles/s%s): %v",
			rep.Faults, rep.Wall.Round(time.Millisecond),
			siCount(rep.CyclesPerSec), snapshotNote(rep.SnapshotHit), rep.Dist),
	})
	return rep, nil
}
