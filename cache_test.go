package merlin

import (
	"testing"

	"merlin/internal/cpu"
)

// TestCacheBitIdenticalReports: a campaign run cold (no cache), cache-miss
// (populating), and cache-hit (served) must produce identical reports; the
// hit must skip the golden run.
func TestCacheBitIdenticalReports(t *testing.T) {
	cfg := Config{
		Workload:  "sha",
		Structure: RF,
		Faults:    300,
		Seed:      11,
		Strategy:  StrategyForked,
	}

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache

	miss, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit {
		t.Fatal("first cached run reported a cache hit on an empty cache")
	}
	hit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("second cached run missed; golden run was repeated")
	}

	for _, r := range []*Report{miss, hit} {
		if r.Dist != cold.Dist {
			t.Fatalf("Dist diverged: cold %v vs %v (hit=%v)", cold.Dist, r.Dist, r.CacheHit)
		}
		if r.GoldenCycles != cold.GoldenCycles || r.InitialFaults != cold.InitialFaults ||
			r.ACEMasked != cold.ACEMasked || r.Injected != cold.Injected ||
			r.FinalGroups != cold.FinalGroups || r.AVF != cold.AVF || r.FIT != cold.FIT {
			t.Fatalf("report diverged from cold run:\ncold %+v\ngot  %+v", cold, r)
		}
	}

	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 hit / 1 miss / 1 put", st)
	}
}

// TestCacheKeySeparation: changing the core configuration must not reuse
// another configuration's golden run.
func TestCacheKeySeparation(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: "sha", Structure: RF, Faults: 50, Seed: 3, Cache: cache}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.CPU = cpu.DefaultConfig().WithRF(128)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("campaign with a different core config was served another config's artifact")
	}
}

// TestConfigValidation: negative knobs reach the user as errors, not as
// silently applied defaults.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative workers": {Workload: "sha", Structure: RF, Faults: 10, Workers: -2},
		"negative faults":  {Workload: "sha", Structure: RF, Faults: -1},
		"negative reps":    {Workload: "sha", Structure: RF, Faults: 10, RepsPerGroup: -3},
		"negative ckpts":   {Workload: "sha", Structure: RF, Faults: 10, Checkpoints: -1},
		"bad confidence":   {Workload: "sha", Structure: RF, Confidence: 1.5},
	} {
		if _, err := Preprocess(cfg); err == nil {
			t.Errorf("%s: Preprocess accepted invalid config", name)
		}
	}
}
